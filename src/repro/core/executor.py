"""Plan execution: buy the missing data, then answer locally.

The executor walks the plan tree left-to-right and, for every market leaf,
re-runs semantic rewriting against the *current* store state (binding
values are known by now), issues the remainder REST calls, records results
into the semantic store, and feeds exact region counts back into the
statistics (Figure 3, steps 5.1-5.4).  Intermediate joins are materialized
only to obtain bind-join values; the final answer is produced the way the
paper's architecture does it — all required rows are staged into the local
DBMS and the whole query is evaluated there (steps 6-8).

Remainder REST calls within one table access are independent (their boxes
are disjoint and the market is read-only), so they are dispatched through
a thread pool of ``max_concurrent_calls`` workers.  Responses are recorded
into the store and statistics serially in remainder order, which keeps
every downstream state — coverage, histograms, billing totals — identical
to serial execution; only wall-clock changes, reported both ways as
``market_time_ms`` (serial sum) and ``market_time_critical_path_ms``
(simulated makespan under the concurrency limit).

All calls go through the money-safe transport
(:mod:`repro.market.transport`): transient faults are retried with
backoff under at-most-once billing.  When a call still fails, the
executor degrades gracefully — the semantic store records **only** the
boxes whose fetches completed (a failed fetch can never poison the
coverage index into skipping a future purchase), and the query either
raises :class:`~repro.errors.MarketUnavailableError` or, under the
transport's ``partial_results`` mode, returns the rows that did arrive
with the failed regions reported on the result.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.context import PlanningContext
from repro.core.objectives import AdaptivePolicy
from repro.core.optimizer import Optimizer, OptimizerOptions
from repro.core.plans import (
    JoinNode,
    LocalBlockNode,
    MarketAccessNode,
    MaterializedNode,
    PlanNode,
)
from repro.errors import (
    ExecutionError,
    MarketUnavailableError,
    TransportError,
)
from repro.market.rest import RestRequest
from repro.market.transport import FetchResult
from repro.relational.database import Database
from repro.relational.engine import DEFAULT_EXECUTION, evaluate
from repro.relational.expressions import Comparison, ColumnRef, RowLayout, conjunction
from repro.relational.relation import Relation
from repro.relational.query import AttributeConstraint, LogicalQuery
from repro.relational.table import Table
from repro.stats.overlay import CardinalityOverlay


#: Installation-wide query sequence feeding the per-query ledger
#: attribution tokens (``q<N>:a<access>``); see ``BillingLedger.attribute``.
_QUERY_SEQ = itertools.count()


@dataclass(frozen=True)
class FailedFetch:
    """One remainder region the transport could not buy."""

    table: str
    request: RestRequest
    error: TransportError

    def __repr__(self) -> str:
        return f"FailedFetch({self.request.url()}: {self.error})"


@dataclass(frozen=True)
class CoveredSkip:
    """A remainder box found already covered at issue time.

    Only possible under concurrent serving: another session recorded the
    box between this query's rewrite and its fetch.  Nothing is billed
    and nothing needs recording — the rows are read from the store like
    any other cache hit.
    """

    request: RestRequest

    def __repr__(self) -> str:
        return f"CoveredSkip({self.request.url()})"


@dataclass
class _PrefetchEntry:
    """One upcoming table access whose remainder calls are already in
    flight on the event loop (async transport only).

    Created at query start from the chosen plan's non-bind market
    accesses; consumed by :meth:`Executor._fetch_market_inner` when the
    plan walk reaches the table.  ``token``/``checkpoint`` were claimed at
    schedule time so ledger attribution is identical either way.  If the
    query fails before consuming the entry, the drain path still waits for
    the calls and records every *paid* box into the store — billed money
    must always buy durable coverage, never be silently dropped.
    """

    table: str
    rewrite: object
    token: str
    checkpoint: int
    future: object


@dataclass
class ExecutionResult:
    """The final relation plus what this query actually cost."""

    relation: Relation
    transactions: int
    price: float
    calls: int
    fetched_records: int
    #: Simulated wall-clock spent on REST calls (serial sum, including
    #: retries and backoff waits of the money-safe transport).
    market_time_ms: float = 0.0
    #: Simulated wall-clock with ``max_concurrent_calls`` in-flight calls:
    #: the critical path of the fetch schedule.  Equals ``market_time_ms``
    #: when executing serially.
    market_time_critical_path_ms: float = 0.0
    #: Transport accounting (see :mod:`repro.market.transport`).
    retries: int = 0
    faults_injected: int = 0
    replays: int = 0
    wasted_transactions: int = 0
    wasted_price: float = 0.0
    #: Regions that could not be bought (non-empty only under the
    #: transport's ``partial_results`` mode; otherwise the executor raises).
    failed_fetches: tuple[FailedFetch, ...] = ()
    #: Singleflight accounting under concurrent serving: fetches this
    #: query rode for free on another session's in-flight call, what they
    #: would have billed, and remainder boxes already covered at issue
    #: time (see :mod:`repro.serve.singleflight`).
    coalesced_fetches: int = 0
    coalesced_savings_transactions: int = 0
    coalesced_savings_price: float = 0.0
    covered_skips: int = 0
    #: Adaptive re-optimization accounting: mid-query re-plans attempted,
    #: and the planner's estimate of dollars the adopted suffixes saved
    #: versus staying the course (0 when adaptive mode is off or never
    #: tripped).
    replans: int = 0
    replan_dollars_saved_est: float = 0.0
    #: Which transport driver executed the fetches ("threaded"/"async")
    #: and how many table accesses were served from a cross-access
    #: prefetch scheduled at query start (async mode only).
    transport_mode: str = "threaded"
    prefetch_hits: int = 0

    @property
    def complete(self) -> bool:
        return not self.failed_fetches


def _makespan(durations_ms: Sequence[float], workers: int) -> float:
    """List-scheduling makespan of ``durations_ms`` over ``workers`` lanes.

    Models the thread pool's in-order greedy assignment; with one worker it
    degenerates to the serial sum.
    """
    if not durations_ms:
        return 0.0
    lanes = min(workers, len(durations_ms))
    if lanes <= 1:
        return float(sum(durations_ms))
    heap = [0.0] * lanes
    for duration in durations_ms:
        heapq.heapreplace(heap, heap[0] + duration)
    return max(heap)


class _Fetched:
    """Join components materialized during fetching.

    Cartesian (Theorem 3) combinations are kept as separate components —
    their cross product is never materialized; binding values are read from
    the component that owns the attribute (empty sibling components zero
    out the bindings, since a cross product with an empty side is empty).
    """

    def __init__(self, components: list[Relation], ops=None):
        self.components = components
        self.ops = ops if ops is not None else DEFAULT_EXECUTION.ops

    @property
    def any_empty(self) -> bool:
        return any(len(component) == 0 for component in self.components)

    def distinct_values(self, ref: ColumnRef) -> set:
        if self.any_empty:
            return set()
        for component in self.components:
            if component.layout.has(ref.table, ref.column):
                return component.distinct_values(ref.table, ref.column)
        raise ExecutionError(f"no fetched component holds {ref!r}")

    def _component_of(self, ref: ColumnRef) -> int:
        for index, component in enumerate(self.components):
            if component.layout.has(ref.table, ref.column):
                return index
        raise ExecutionError(f"no fetched component holds {ref!r}")

    def apply_joins(self, predicates: tuple) -> "_Fetched":
        """Apply equi-join predicates, merging components as needed.

        Predicates whose two sides live in different components hash-join
        those components into one; predicates internal to one component
        become a filter.  Components never referenced stay separate (they
        are Cartesian siblings — their product is never materialized).
        """
        components = list(self.components)
        for predicate in predicates:
            left_table, right_table = predicate.tables()
            left_ref = predicate.side_for(left_table)
            right_ref = predicate.side_for(right_table)
            fetched = _Fetched(components, self.ops)
            left_index = fetched._component_of(left_ref)
            right_index = fetched._component_of(right_ref)
            if left_index == right_index:
                components[left_index] = self.ops.filter_rows(
                    components[left_index],
                    Comparison("=", left_ref, right_ref),
                )
                continue
            joined = self.ops.hash_join(
                components[left_index],
                components[right_index],
                [(left_ref, right_ref)],
            )
            keep = [
                component
                for index, component in enumerate(components)
                if index not in (left_index, right_index)
            ]
            components = [joined] + keep
        return _Fetched(components, self.ops)


class Executor:
    """Executes one optimized plan for one logical query.

    ``max_concurrent_calls`` bounds in-flight REST calls per table access;
    ``None`` inherits the planning context's setting, and ``1`` executes
    serially (bit-for-bit the historical behaviour).
    """

    def __init__(
        self,
        context: PlanningContext,
        max_concurrent_calls: int | None = None,
        adaptive: AdaptivePolicy | None = None,
        optimizer_options: OptimizerOptions | None = None,
    ):
        self.context = context
        self.execution = context.execution
        self._ops = self.execution.ops
        self.max_concurrent_calls = (
            max_concurrent_calls
            if max_concurrent_calls is not None
            else context.max_concurrent_calls
        )
        if self.max_concurrent_calls < 1:
            raise ExecutionError("max_concurrent_calls must be >= 1")
        #: Mid-query re-optimization policy (None = static pipeline) and
        #: the planner options re-plans must preserve (objective, SQR,
        #: cost metric, ... — the suffix is planned like the original).
        self.adaptive = adaptive
        self.optimizer_options = optimizer_options
        #: The async driver (:mod:`repro.market.aio`), or ``None`` for the
        #: historical threaded path.  Wired by the planning context when
        #: ``QueryOptions(transport_mode="async")``.
        self._aio = getattr(context, "async_transport", None)
        #: Cross-access prefetch only makes sense on the async driver and
        #: only for a *static* plan: an adaptive executor may re-plan the
        #: suffix mid-query, and prefetch must never buy for a plan that
        #: might be abandoned (wasted dollars must stay provably zero).
        self._prefetch_enabled = (
            self._aio is not None
            and adaptive is None
            and getattr(context, "prefetch", True)
        )
        #: Long-lived thread pool for the threaded path, shared by every
        #: table access of this executor (lazily created, shut down by
        #: :meth:`close`) — the historical per-access pool paid thread
        #: startup on every access.
        self._call_pool: ThreadPoolExecutor | None = None
        self._prefetched: dict[str, _PrefetchEntry] = {}

    def close(self) -> None:
        """Release execution resources (idempotent; called by PayLess)."""
        pool, self._call_pool = self._call_pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def execute(self, query: LogicalQuery, plan: PlanNode) -> ExecutionResult:
        self._query = query
        self._staged: dict[str, list] = {}
        self._critical_path_ms = 0.0
        self._serial_ms = 0.0
        self._scope = self.context.transport.new_scope()
        self._failed_fetches: list[FailedFetch] = []
        # Ledger attribution: every market call this query issues is
        # stamped with a per-table-access token (``q<N>:a<M>``), and the
        # query's cost is the sum over its own tokens' entries.  Global
        # before/after ledger diffs would claim other sessions' entries
        # under concurrent serving.
        self._query_token = f"q{next(_QUERY_SEQ)}"
        self._access_seq = 0
        self._spent_transactions = 0
        self._spent_price = 0.0
        self._billed_calls = 0
        self._billed_records = 0
        self._replans = 0
        self._replan_saved = 0.0
        self._prefetch_hits = 0
        self._prefetched = {}
        try:
            if self._prefetch_enabled:
                self._schedule_prefetch(plan)
            if self.adaptive is None:
                self._fetch(plan)
            else:
                self._adaptive_fetch(plan)
        finally:
            # Any prefetched access the plan walk did not consume (an
            # earlier access failed the query) is drained here: wait for
            # the in-flight calls and record every paid box into the
            # store, so billed money always buys coverage.  A normally
            # completed static plan consumes every entry — this is then a
            # no-op, which is what keeps prefetch_wasted_dollars at zero.
            self._drain_prefetch()

        staging = self._build_staging(query)
        tracer = self.context.tracer
        if tracer.enabled:
            input_rows = sum(
                len(staging.table(name)) for name in query.tables
            )
            with tracer.span("local_eval") as eval_span:
                started = time.perf_counter()
                relation = evaluate(staging, query, self.execution)
                eval_ms = (time.perf_counter() - started) * 1000.0
                if eval_span is not None:
                    eval_span.set(
                        engine=self.execution.engine,
                        input_rows=input_rows,
                        output_rows=len(relation.rows),
                        eval_ms=eval_ms,
                        rows_per_sec=(
                            input_rows / (eval_ms / 1000.0)
                            if eval_ms > 0.0
                            else 0.0
                        ),
                    )
        else:
            relation = evaluate(staging, query, self.execution)

        scope = self._scope
        return ExecutionResult(
            relation=relation,
            transactions=self._spent_transactions,
            price=self._spent_price,
            calls=self._billed_calls,
            fetched_records=self._billed_records,
            market_time_ms=self._serial_ms,
            market_time_critical_path_ms=self._critical_path_ms,
            retries=scope.retries,
            faults_injected=scope.faults_injected,
            replays=scope.replays,
            wasted_transactions=scope.wasted_transactions,
            wasted_price=scope.wasted_price,
            failed_fetches=tuple(self._failed_fetches),
            coalesced_fetches=scope.coalesced_fetches,
            coalesced_savings_transactions=(
                scope.coalesced_savings_transactions
            ),
            coalesced_savings_price=scope.coalesced_savings_price,
            covered_skips=scope.covered_skips,
            replans=self._replans,
            replan_dollars_saved_est=self._replan_saved,
            transport_mode="async" if self._aio is not None else "threaded",
            prefetch_hits=self._prefetch_hits,
        )

    # ------------------------------------------------------------------ fetching

    def _fetch(self, node: PlanNode) -> _Fetched:
        if isinstance(node, LocalBlockNode):
            return self._fetch_block(node)
        if isinstance(node, MarketAccessNode):
            relation = self._fetch_market(node.table, (), source="access")
            return _Fetched([relation], self._ops)
        if isinstance(node, JoinNode):
            left = self._fetch(node.left)
            if isinstance(node.right, MarketAccessNode) and node.bind:
                right_components = [
                    self._fetch_bound(node.right, node.predicates, left)
                ]
            else:
                right_components = self._fetch(node.right).components
            combined = _Fetched(left.components + right_components, self._ops)
            if node.predicates:
                combined = combined.apply_joins(node.predicates)
            return combined
        raise ExecutionError(f"unknown plan node {type(node).__name__}")

    # ----------------------------------------------- cross-access prefetch

    def _prefetchable_tables(self, node: PlanNode, tables: list[str]) -> None:
        """Collect, in execution order, the plan's *certain* market buys.

        Mirrors :meth:`_fetch`'s walk exactly: a non-bind
        :class:`MarketAccessNode` will be fetched with the query's static
        constraints no matter what earlier accesses return, so buying it
        early can never waste a dollar.  Bind-join right sides depend on
        runtime binding values, and LocalBlock market tables are covered
        reads — neither is prefetchable.
        """
        if isinstance(node, MarketAccessNode):
            tables.append(node.table)
            return
        if isinstance(node, JoinNode):
            self._prefetchable_tables(node.left, tables)
            if not (isinstance(node.right, MarketAccessNode) and node.bind):
                self._prefetchable_tables(node.right, tables)

    def _schedule_prefetch(self, plan: PlanNode) -> None:
        """Rewrite every certain upcoming access *now* and put its
        remainder calls in flight on the event loop, so market latency
        overlaps earlier accesses and local join evaluation instead of
        serializing behind them."""
        tables: list[str] = []
        self._prefetchable_tables(plan, tables)
        ledger = self.context.market.ledger
        for table in tables:
            key = table.lower()
            if key in self._prefetched:
                # The same table twice in one plan (a Theorem-3 shape):
                # only the first access is prefetched; the second re-
                # rewrites against the then-current store like any other.
                continue
            table_store = self.context.store.table(table)
            constraints = list(self._query.constraints_for(table))
            with table_store.lock:
                rewrite = self.context.rewriter.rewrite(
                    table,
                    constraints,
                    self.context.tuples_per_transaction(table),
                )
                if rewrite.store_epoch != table_store.epoch:
                    raise ExecutionError(
                        f"stale rewrite for {table!r}: computed at store "
                        f"epoch {rewrite.store_epoch}, executing at "
                        f"{table_store.epoch}"
                    )
            dataset = self.context.dataset_of(table)
            self._access_seq += 1
            token = f"{self._query_token}:a{self._access_seq}"
            checkpoint = ledger.checkpoint()
            future = self._submit_async_calls(
                dataset, table, rewrite.remainder, token
            )
            self._prefetched[key] = _PrefetchEntry(
                table=table,
                rewrite=rewrite,
                token=token,
                checkpoint=checkpoint,
                future=future,
            )

    def _drain_prefetch(self) -> None:
        """Settle prefetch entries the plan walk never consumed.

        Never cancels after billing: every completed purchase is recorded
        into the store (and the durability log) under the table lock, and
        every led singleflight is released so no waiter hangs on a query
        that died.  The dollars spent on unconsumed entries are counted in
        ``prefetch_wasted_dollars`` — zero for every successfully
        completed query, which the test suite asserts.
        """
        if not self._prefetched:
            return
        entries = list(self._prefetched.values())
        self._prefetched = {}
        store = self.context.store
        coalescer = self.context.coalescer
        durability = self.context.durability
        ledger = self.context.market.ledger
        metrics = self.context.metrics
        for entry in entries:
            try:
                results, lead_flights = entry.future.result()
            except BaseException:
                # The batch died before producing outcomes (a market
                # rejection or simulated crash escaped a coroutine);
                # nothing completed under this token that we could record.
                continue
            outcomes = [outcome for outcome, _ in results]
            table_store = store.table(entry.table)
            statistics = self.context.catalog.statistics(entry.table)
            purchases_logged = False
            with table_store.lock:
                for remainder, outcome in zip(
                    entry.rewrite.remainder, outcomes
                ):
                    if isinstance(outcome, (FailedFetch, CoveredSkip)):
                        continue
                    response = outcome.response
                    store.record(entry.table, remainder.box, response.rows)
                    statistics.histogram.observe(
                        remainder.box, response.record_count
                    )
                    if durability is not None:
                        durability.log_purchase(
                            table=entry.table,
                            box=remainder.box,
                            rows=response.rows,
                            count=response.record_count,
                            stored_at=store.clock,
                            url=response.request.url(),
                            key=outcome.idempotency_key,
                            transactions=outcome.billed_transactions,
                            price=outcome.billed_price,
                            coalesced=outcome.coalesced,
                            saved_transactions=outcome.saved_transactions,
                            saved_price=outcome.saved_price,
                        )
                        purchases_logged = True
                if purchases_logged:
                    durability.commit()
                if coalescer is not None:
                    for flight in lead_flights:
                        coalescer.release(flight)
            billed = ledger.entries_for_token(entry.token, entry.checkpoint)
            spent = sum(
                e.price for e in billed if not ledger.is_wasted(e)
            )
            if spent:
                metrics.counter("prefetch_wasted_dollars").inc(spent)

    # --------------------------------------------- adaptive re-optimization

    @staticmethod
    def _linearize(node: PlanNode) -> tuple[PlanNode, list[JoinNode]]:
        """Split a left-deep plan into (deepest leaf, join steps in order).

        Each step is a :class:`JoinNode` whose right child is the market
        access it adds; walking stops at the first node that is not such
        a step (the Theorem-2 block, a lone market access, a
        :class:`MaterializedNode` prefix, or a Theorem-3 composition).
        """
        steps: list[JoinNode] = []
        while isinstance(node, JoinNode) and isinstance(
            node.right, MarketAccessNode
        ):
            steps.append(node)
            node = node.left
        steps.reverse()
        return node, steps

    def _adaptive_fetch(self, node: PlanNode) -> _Fetched:
        """The checkpointed pipeline: after each join step, compare the
        prefix's actual cardinality against the plan's estimate and
        re-plan the remaining steps when the policy trips.

        With a policy that never trips this performs exactly the work of
        :meth:`_fetch` — same accesses, same order, same store and
        histogram feedback — plus one float comparison per step.
        """
        if not isinstance(node, JoinNode):
            return self._fetch(node)
        if not isinstance(node.right, MarketAccessNode):
            # Theorem-3 composition: the sides are join-disconnected, so
            # each adapts independently; the composition buys nothing.
            left = self._adaptive_fetch(node.left)
            right = self._adaptive_fetch(node.right)
            combined = _Fetched(left.components + right.components, self._ops)
            if node.predicates:
                combined = combined.apply_joins(node.predicates)
            return combined
        leaf, steps = self._linearize(node)
        if isinstance(leaf, JoinNode):
            current = self._adaptive_fetch(leaf)
        else:
            current = self._fetch(leaf)
        executed = set(leaf.relations)
        estimate = max(leaf.estimated_rows, 0.0)
        adaptive = self.adaptive
        while steps:
            actual = self._actual_rows(current)
            if self._replans < adaptive.max_replans and adaptive.diverged(
                estimate, actual
            ):
                new_steps = self._replan(
                    current, executed, actual, tuple(steps)
                )
                if new_steps is not None:
                    steps = new_steps
                    # The re-planned suffix was costed against the actual
                    # prefix cardinality: the estimate is now the truth,
                    # so the very next check cannot re-trip on it.
                    estimate = actual
                    if not steps:
                        break
            step = steps.pop(0)
            if isinstance(step.right, MarketAccessNode) and step.bind:
                right_components = [
                    self._fetch_bound(step.right, step.predicates, current)
                ]
            else:
                right_components = self._fetch(step.right).components
            current = _Fetched(
                current.components + right_components, self._ops
            )
            if step.predicates:
                current = current.apply_joins(step.predicates)
            executed |= set(step.right.relations)
            estimate = max(step.estimated_rows, 0.0)
        return current

    @staticmethod
    def _actual_rows(fetched: _Fetched) -> float:
        """Exact cardinality of the materialized prefix (the Cartesian
        product size of its unreferenced sibling components)."""
        actual = 1.0
        for component in fetched.components:
            # len(relation), not len(relation.rows): the row-tuple view
            # is materialized lazily and this check runs on every step.
            actual *= len(component)
        return actual

    def _replan(
        self,
        current: _Fetched,
        executed: set[str],
        actual: float,
        old_steps: tuple[JoinNode, ...],
    ) -> list[JoinNode] | None:
        """Re-plan the not-yet-executed joins; None keeps the old plan."""
        self._replans += 1
        tracer = self.context.tracer
        if not tracer.enabled:
            return self._replan_inner(current, executed, actual, old_steps, None)
        with tracer.span("replan", tables=sorted(executed)) as span:
            return self._replan_inner(
                current, executed, actual, old_steps, span
            )

    def _replan_inner(
        self,
        current: _Fetched,
        executed: set[str],
        actual: float,
        old_steps: tuple[JoinNode, ...],
        span,
    ) -> list[JoinNode] | None:
        overlay = self._build_overlay(current, executed)
        prefix = MaterializedNode(
            relations=frozenset(executed),
            cost=0.0,
            estimated_rows=float(actual),
            tables=tuple(sorted(executed)),
        )
        optimizer = Optimizer(self.context, self.optimizer_options)
        started = time.perf_counter()
        suffix = optimizer.optimize_suffix(
            self._query, prefix, overlay=overlay, old_steps=old_steps
        )
        planning_us = (time.perf_counter() - started) * 1e6
        metrics = self.context.metrics
        metrics.counter("plan_replans").inc()
        metrics.histogram("replan_planning_us").observe(planning_us)
        adopted = False
        new_steps: list[JoinNode] | None = None
        saved = 0.0
        if suffix is not None:
            leaf, steps = self._linearize(suffix.plan)
            # Only a plain resumable chain over THIS prefix is adoptable;
            # anything else (e.g. a Theorem-3 shape that would replay the
            # prefix) keeps the original plan.
            if leaf is prefix:
                saved = max(suffix.old_cost - suffix.cost, 0.0)
                self._replan_saved += saved
                new_steps = steps
                adopted = True
        if span is not None:
            span.set(
                actual_rows=actual,
                replan_seq=self._replans,
                planning_us=planning_us,
                adopted=adopted,
                old_suffix_cost=(
                    suffix.old_cost if suffix is not None else None
                ),
                new_suffix_cost=(suffix.cost if suffix is not None else None),
                dollars_saved_est=saved,
            )
        return new_steps

    def _build_overlay(
        self, current: _Fetched, executed: set[str]
    ) -> CardinalityOverlay:
        """Layer the prefix's observed truths over the shared estimates.

        Strictly query-private (see :mod:`repro.stats.overlay`): region
        row counts come from this query's own staged rows, distinct
        counts from the materialized intermediate, and nothing touches
        the shared catalog.
        """
        overlay = CardinalityOverlay()
        for table in executed:
            if self.context.is_market(table):
                overlay.set_region_rows(
                    table, len(self._staged.get(table.lower(), []))
                )
        remaining = {
            t.lower() for t in self._query.tables
        } - {t.lower() for t in executed}
        for join in self._query.joins:
            left_t, right_t = (t.lower() for t in join.tables())
            if left_t in executed and right_t in remaining:
                ref = join.left
            elif right_t in executed and left_t in remaining:
                ref = join.right
            else:
                continue
            try:
                values = current.distinct_values(ref)
            except ExecutionError:
                continue
            overlay.set_distinct(ref.table, ref.column, len(values))
        return overlay

    def _fetch_block(self, node: LocalBlockNode) -> _Fetched:
        """Evaluate the zero-price block on local + covered market data."""
        block_db = Database()
        for table_name in node.tables:
            if self.context.is_market(table_name):
                relation = self._fetch_market(table_name, (), source="covered")
                schema = self.context.schema_of(table_name)
                staged = Table(table_name, schema)
                staged.extend(relation.rows)
                block_db.add(staged)
            else:
                block_db.add(self.context.local_db.table(table_name))
        block_tables = {t.lower() for t in node.tables}
        sub_query = LogicalQuery(
            tables=list(node.tables),
            constraints={
                t: cs
                for t, cs in self._query.constraints.items()
                if t.lower() in block_tables
            },
            residuals={
                t: rs
                for t, rs in self._query.residuals.items()
                if t.lower() in block_tables
            },
            joins=[
                j
                for j in self._query.joins
                if j.tables()[0].lower() in block_tables
                and j.tables()[1].lower() in block_tables
            ],
        )
        return _Fetched([evaluate(block_db, sub_query, self.execution)], self._ops)

    def _fetch_bound(
        self,
        node: MarketAccessNode,
        predicates: tuple,
        left: _Fetched,
    ) -> Relation:
        """Fetch the right side of a bind join with actual binding values."""
        extra: list[AttributeConstraint] = []
        for predicate in predicates:
            inner = predicate.side_for(node.table)
            outer = predicate.other_side(node.table)
            values = left.distinct_values(outer)
            if not values:
                # Still one (zero-width) fetch span per MarketAccessNode:
                # EXPLAIN ANALYZE and the trace invariants rely on it.
                tracer = self.context.tracer
                if tracer.enabled:
                    tracer.event(
                        "table_fetch",
                        table=node.table,
                        source="bound",
                        empty_bindings=True,
                        calls=0,
                        purchased_rows=0,
                        cache_served_rows=0,
                        transactions=0,
                        price=0.0,
                    )
                return self._empty_relation(node.table)
            extra.append(
                AttributeConstraint(inner.column, values=frozenset(values))
            )
        return self._fetch_market(node.table, tuple(extra), source="bound")

    def _fetch_market(
        self,
        table: str,
        extra_constraints: tuple[AttributeConstraint, ...],
        source: str = "access",
    ) -> Relation:
        """Rewrite, buy the remainder, record feedback, return region rows."""
        tracer = self.context.tracer
        if not tracer.enabled:
            return self._fetch_market_inner(table, extra_constraints, None, source)
        with tracer.span("table_fetch", table=table, source=source) as span:
            return self._fetch_market_inner(table, extra_constraints, span, source)

    def _fetch_market_inner(
        self,
        table: str,
        extra_constraints: tuple[AttributeConstraint, ...],
        span,
        source: str = "access",
    ) -> Relation:
        constraints = list(self._query.constraints_for(table)) + list(
            extra_constraints
        )
        store = self.context.store
        table_store = store.table(table)
        ledger = self.context.market.ledger
        entry = None
        if source == "access" and not extra_constraints and self._prefetched:
            entry = self._prefetched.pop(table.lower(), None)
        if entry is not None:
            # The access was prefetched at query start: its rewrite, token
            # and checkpoint were claimed then, and its remainder calls
            # have been in flight while earlier accesses (and their joins)
            # executed.  Everything below the issue step is identical.
            rewrite = entry.rewrite
            access_token = entry.token
            checkpoint = entry.checkpoint
            outcomes, lead_flights = self._collect_async_calls(
                entry.future, span
            )
            self._prefetch_hits += 1
            self.context.metrics.counter("prefetch_hits").inc()
        else:
            # Rewrite under the table lock: the rewrite decides what money
            # to spend, so it must reflect the store *now*, and under
            # concurrent serving other sessions record into this table at
            # any moment.  Holding the lock pins the epoch across rewrite
            # + check, so the staleness guard below can only trip if a
            # stale-caching bug is reintroduced somewhere upstream (the
            # rewriter memo keys on the epoch).
            with table_store.lock:
                rewrite = self.context.rewriter.rewrite(
                    table,
                    constraints,
                    self.context.tuples_per_transaction(table),
                )
                current_epoch = table_store.epoch
                if rewrite.store_epoch != current_epoch:
                    raise ExecutionError(
                        f"stale rewrite for {table!r}: computed at store "
                        f"epoch {rewrite.store_epoch}, executing at "
                        f"{current_epoch}"
                    )
            dataset = self.context.dataset_of(table)
            self._access_seq += 1
            access_token = f"{self._query_token}:a{self._access_seq}"
            checkpoint = ledger.checkpoint()
            outcomes, lead_flights = self._issue_market_calls(
                dataset, table, rewrite.remainder, access_token, span
            )
        statistics = self.context.catalog.statistics(table)
        # Record serially in remainder order: store coverage, histogram
        # feedback, and billing totals end up identical to serial fetch.
        # Only *completed* fetches are recorded — a failed box must never
        # enter the coverage index, or a future query would silently skip
        # buying data it does not have (the store-poisoning hazard).
        # Coalesced results record too (store dedup and the identical
        # histogram observation make it idempotent against the leader's
        # own record) — a waiter must never read the store before its
        # shared rows are in it.  The whole section holds the table lock:
        # recording, retiring led flights, and assembling the result rows
        # are one atomic switch-over from any other session's view.
        failed: list[FailedFetch] = []
        purchased_rows = 0
        purchases_logged = False
        coalescer = self.context.coalescer
        durability = self.context.durability
        with table_store.lock:
            for remainder, outcome in zip(rewrite.remainder, outcomes):
                if isinstance(outcome, FailedFetch):
                    failed.append(outcome)
                    continue
                if isinstance(outcome, CoveredSkip):
                    continue
                response = outcome.response
                purchased_rows += response.record_count
                store.record(table, remainder.box, response.rows)
                statistics.histogram.observe(
                    remainder.box, response.record_count
                )
                if durability is not None:
                    durability.log_purchase(
                        table=table,
                        box=remainder.box,
                        rows=response.rows,
                        count=response.record_count,
                        stored_at=store.clock,
                        url=response.request.url(),
                        key=outcome.idempotency_key,
                        transactions=outcome.billed_transactions,
                        price=outcome.billed_price,
                        coalesced=outcome.coalesced,
                        saved_transactions=outcome.saved_transactions,
                        saved_price=outcome.saved_price,
                    )
                    purchases_logged = True
            if purchases_logged:
                # Group commit inside the record→release window: once any
                # other session can see these rows (or a waiter is
                # released), the purchases that produced them are durable.
                # Fully-covered accesses skip it — they appended nothing,
                # and bookkeeping records ride the next money commit.
                durability.commit()
            if coalescer is not None:
                for flight in lead_flights:
                    coalescer.release(flight)
            columns, row_count = store.columns_in_boxes(
                table, rewrite.request_boxes
            )
        # Token-grounded attribution: exactly the entries this access
        # billed, no matter how other sessions' entries interleave (the
        # checkpoint merely bounds the scan).  Per-span totals therefore
        # still sum exactly to the query's QueryStats.
        entries = ledger.entries_for_token(access_token, checkpoint)
        billed_transactions = sum(e.transactions for e in entries)
        billed_price = sum(e.price for e in entries)
        wasted_transactions = sum(
            e.transactions for e in entries if ledger.is_wasted(e)
        )
        wasted_price = sum(
            e.price for e in entries if ledger.is_wasted(e)
        )
        self._billed_calls += len(entries)
        self._billed_records += sum(e.record_count for e in entries)
        self._spent_transactions += billed_transactions - wasted_transactions
        self._spent_price += billed_price - wasted_price
        if span is not None:
            span.set(
                calls=len(outcomes),
                failed_calls=len(failed),
                retries=sum(
                    max(0, getattr(o.error, "attempts", 0) - 1)
                    if isinstance(o, FailedFetch)
                    else 0
                    if isinstance(o, CoveredSkip)
                    else o.retries
                    for o in outcomes
                ),
                replays=sum(
                    1
                    for o in outcomes
                    if isinstance(o, FetchResult) and o.replayed
                ),
                purchased_rows=purchased_rows,
                transactions=billed_transactions - wasted_transactions,
                price=billed_price - wasted_price,
                billed_transactions=billed_transactions,
                billed_price=billed_price,
                wasted_transactions=wasted_transactions,
                wasted_price=wasted_price,
                estimated_transactions=rewrite.estimated_transactions,
                fully_covered=rewrite.fully_covered,
            )
        if failed:
            if not self.context.transport.config.partial_results:
                raise MarketUnavailableError(
                    f"{len(failed)} of {len(outcomes)} market calls for "
                    f"{table!r} failed: "
                    + "; ".join(str(f.error) for f in failed[:3]),
                    failed=tuple(failed),
                )
            self._failed_fetches.extend(failed)
        if span is not None:
            span.set(cache_served_rows=max(0, row_count - purchased_rows))
        relation = Relation.from_columns(
            RowLayout.for_table(table, self.context.schema_of(table).names),
            columns,
            row_count,
        )
        predicates = [c.to_expression(table) for c in constraints]
        predicates.extend(self._query.residuals_for(table))
        if predicates:
            relation = self._ops.filter_rows(relation, conjunction(predicates))
        staged = self._staged.setdefault(table.lower(), [])
        seen = set(staged)
        for row in relation.rows:
            if row not in seen:
                seen.add(row)
                staged.append(row)
        return relation

    def _issue_market_calls(
        self, dataset, table, remainders, access_token, parent_span=None
    ) -> tuple[list, list]:
        """Issue the remainder GETs through the transport, concurrently when
        allowed.

        Remainder boxes are disjoint and the market is read-only, so the
        calls commute; outcomes come back in request order either way.
        Each element of the returned outcome list is a
        :class:`~repro.market.transport.FetchResult`, a
        :class:`FailedFetch`, or a :class:`CoveredSkip` — per-call
        failures are captured rather than raised so sibling successes can
        still be recorded (the money was spent; keeping the data saves a
        future re-purchase).  The second return value is the singleflight
        flights this access *led*; the caller retires them under the
        table lock once their rows are recorded.

        Tracing under concurrency is race-free by construction: worker
        threads only create *detached* ``market_call`` spans (private
        objects, no shared trace state — see :mod:`repro.obs.trace`) plus
        lock-guarded in-flight counters; the coordinating thread adopts
        the finished spans into ``parent_span`` in request order after the
        pool drains, so per-fetch timing and attempt counts are recorded
        identically regardless of thread scheduling.
        """
        if self._aio is not None:
            return self._collect_async_calls(
                self._submit_async_calls(
                    dataset, table, remainders, access_token
                ),
                parent_span,
            )
        transport = self.context.transport
        ledger = self.context.market.ledger
        scope = self._scope
        tracer = self.context.tracer
        tracing = parent_span is not None and tracer.enabled
        metrics = self.context.metrics
        coalescer = self.context.coalescer
        table_store = (
            self.context.store.table(table) if coalescer is not None else None
        )
        requests = [
            RestRequest(dataset, table, remainder.constraints)
            for remainder in remainders
        ]
        if requests:
            metrics.histogram("fetch_batch_size").observe(len(requests))
        high_water = metrics.gauge("fetch_pool_high_water")
        in_flight_lock = threading.Lock()
        in_flight = 0
        lead_flights: list = []
        lead_lock = threading.Lock()

        def fetch_once(request: RestRequest):
            # The attribution token is thread-local, so it must be entered
            # on the worker thread actually billing the call.
            with ledger.attribute(access_token):
                return transport.fetch(request, scope)

        def issue(item):
            nonlocal in_flight
            index, request = item
            with in_flight_lock:
                in_flight += 1
                high_water.set_max(in_flight)
            call_span = (
                tracer.detached_span("market_call", url=request.url())
                if tracing
                else None
            )
            try:
                try:
                    if coalescer is None:
                        outcome = fetch_once(request)
                    else:
                        outcome = self._coalesced_fetch(
                            coalescer,
                            table_store,
                            remainders[index].box,
                            request,
                            fetch_once,
                            lead_flights,
                            lead_lock,
                        )
                except TransportError as error:
                    outcome = FailedFetch(
                        table=table, request=request, error=error
                    )
            finally:
                with in_flight_lock:
                    in_flight -= 1
            if call_span is not None:
                self._finish_call_span(call_span, outcome)
            return outcome, call_span

        limit = self.max_concurrent_calls
        if limit > 1 and len(requests) > 1:
            # One long-lived pool per executor, shared by every table
            # access of the query: the historical per-access pool paid
            # thread startup (and its scheduling jitter) on each access.
            pool = self._call_pool
            if pool is None:
                pool = self._call_pool = ThreadPoolExecutor(
                    max_workers=limit, thread_name_prefix="fetch"
                )
            results = list(pool.map(issue, enumerate(requests)))
        else:
            results = [
                issue(item) for item in enumerate(requests)
            ]
        outcomes = [outcome for outcome, _ in results]
        if tracing:
            for _, call_span in results:
                if call_span is not None:
                    parent_span.adopt(call_span)
        durations = [
            outcome.error.elapsed_ms
            if isinstance(outcome, FailedFetch)
            else 0.0
            if isinstance(outcome, CoveredSkip)
            else outcome.elapsed_ms
            for outcome in outcomes
        ]
        self._serial_ms += sum(durations)
        self._critical_path_ms += _makespan(durations, limit)
        return outcomes, lead_flights

    def _submit_async_calls(
        self, dataset, table, remainders, access_token
    ):
        """Pipeline one access's remainder GETs onto the event loop.

        The async twin of the threaded issue path: every remainder call
        becomes a coroutine driving the shared fetch machine against the
        per-seller connection pool, with the pool's semaphore as the only
        in-flight cap.  Returns a ``concurrent.futures.Future`` resolving
        to ``(results, lead_flights)`` where results are
        ``(outcome, detached_span)`` pairs in request order — the caller
        (either the consuming table access or the failure drain) blocks on
        it when it actually needs the data.

        Attribution tokens are applied around each physical call by
        :meth:`AsyncMarketTransport.fetch` (thread-local, never across an
        ``await``); in-flight counters are plain ints because every
        coroutine of an installation runs on the one loop thread.
        """
        aio = self._aio
        scope = self._scope
        tracer = self.context.tracer
        tracing = tracer.enabled
        metrics = self.context.metrics
        coalescer = self.context.coalescer
        table_store = (
            self.context.store.table(table) if coalescer is not None else None
        )
        requests = [
            RestRequest(dataset, table, remainder.constraints)
            for remainder in remainders
        ]
        if requests:
            metrics.histogram("fetch_batch_size").observe(len(requests))
        high_water = metrics.gauge("fetch_pool_high_water")
        state = {"in_flight": 0}
        lead_flights: list = []

        async def issue(index: int, request: RestRequest):
            state["in_flight"] += 1
            high_water.set_max(state["in_flight"])
            call_span = (
                tracer.detached_span("market_call", url=request.url())
                if tracing
                else None
            )
            try:
                try:
                    if coalescer is None:
                        outcome = await aio.fetch(request, scope, access_token)
                    else:
                        outcome = await self._coalesced_fetch_async(
                            coalescer,
                            table_store,
                            remainders[index].box,
                            request,
                            access_token,
                            lead_flights,
                        )
                except TransportError as error:
                    outcome = FailedFetch(
                        table=table, request=request, error=error
                    )
            finally:
                state["in_flight"] -= 1
            if call_span is not None:
                self._finish_call_span(call_span, outcome)
            return outcome, call_span

        async def issue_all():
            results = await asyncio.gather(
                *(issue(index, request)
                  for index, request in enumerate(requests))
            )
            return list(results), lead_flights

        return aio.submit(issue_all())

    def _collect_async_calls(self, future, parent_span) -> tuple[list, list]:
        """Block on one access's pipelined calls and account for them.

        Mirrors the threaded path's post-drain bookkeeping: detached call
        spans are adopted into the access's ``table_fetch`` span in
        request order, and the simulated makespan is charged under the
        async in-flight cap (the per-seller pool size) with connection
        reuse already reflected in the per-call durations.
        """
        results, lead_flights = future.result()
        outcomes = [outcome for outcome, _ in results]
        if parent_span is not None:
            for _, call_span in results:
                if call_span is not None:
                    parent_span.adopt(call_span)
        durations = [
            outcome.error.elapsed_ms
            if isinstance(outcome, FailedFetch)
            else 0.0
            if isinstance(outcome, CoveredSkip)
            else outcome.elapsed_ms
            for outcome in outcomes
        ]
        self._serial_ms += sum(durations)
        self._critical_path_ms += _makespan(durations, self._aio.pool_size)
        return outcomes, lead_flights

    async def _coalesced_fetch_async(
        self,
        coalescer,
        table_store,
        box,
        request: RestRequest,
        access_token: str,
        lead_flights: list,
    ):
        """Async twin of :meth:`_coalesced_fetch` — same serving
        invariant, same leader/follower protocol, same accounting.

        Followers park the flight's *threading* Event on the default
        executor so the loop keeps running while they wait; leaders abort
        (deregistering before any waiter wakes) on failure exactly as the
        threaded path does.  ``lead_flights`` mutates loop-thread-only.
        """
        scope = self._scope
        metrics = self.context.metrics
        ledger = self.context.market.ledger
        store = self.context.store
        loop = asyncio.get_running_loop()
        key = request.url()
        while True:
            with table_store.lock:
                if table_store.is_covered(box, store.policy, store.clock):
                    scope.note_covered_skip()
                    return CoveredSkip(request=request)
                flight, leader = coalescer.begin(key)
            if leader:
                try:
                    result = await self._aio.fetch(
                        request, scope, access_token
                    )
                except BaseException as error:
                    # Deregister BEFORE waiters wake: no waiter may ever be
                    # served rows from a fetch the market did not bill.
                    coalescer.abort(flight, error)
                    raise
                coalescer.complete(flight, result)
                lead_flights.append(flight)
                return result
            waited = time.perf_counter()
            await loop.run_in_executor(None, flight.wait)
            wait_ms = (time.perf_counter() - waited) * 1000.0
            if flight.failed:
                continue
            shared = flight.result
            response = shared.response
            scope.note_coalesced(response.transactions, response.price, wait_ms)
            ledger.note_coalesced_savings(response.transactions, response.price)
            metrics.counter("fetch_coalesced").inc()
            metrics.histogram("fetch_coalesce_wait_us").observe(
                wait_ms * 1000.0
            )
            metrics.counter("dollars_saved_coalescing").inc(response.price)
            return FetchResult(
                response=response,
                attempts=1,
                elapsed_ms=shared.elapsed_ms,
                coalesced=True,
                saved_transactions=response.transactions,
                saved_price=response.price,
            )

    def _coalesced_fetch(
        self,
        coalescer,
        table_store,
        box,
        request: RestRequest,
        fetch_once,
        lead_flights: list,
        lead_lock: threading.Lock,
    ):
        """One remainder call through the singleflight layer.

        The loop re-establishes, on every iteration, the serving
        invariant: under the table lock, either the box is covered (free),
        or a flight exists to join (free), or we lead a new flight (we
        pay).  A failed leader's waiters come back through here — the
        flight was deregistered before they woke, so one of them leads a
        fresh attempt with its own transport retry budget; each query
        fails at most once as leader per key, so the loop terminates.
        """
        scope = self._scope
        metrics = self.context.metrics
        ledger = self.context.market.ledger
        store = self.context.store
        key = request.url()
        while True:
            with table_store.lock:
                if table_store.is_covered(box, store.policy, store.clock):
                    scope.note_covered_skip()
                    return CoveredSkip(request=request)
                flight, leader = coalescer.begin(key)
            if leader:
                try:
                    result = fetch_once(request)
                except BaseException as error:
                    # Deregister BEFORE waiters wake: no waiter may ever be
                    # served rows from a fetch the market did not bill.
                    coalescer.abort(flight, error)
                    raise
                coalescer.complete(flight, result)
                with lead_lock:
                    lead_flights.append(flight)
                return result
            waited = time.perf_counter()
            flight.wait()
            wait_ms = (time.perf_counter() - waited) * 1000.0
            if flight.failed:
                continue
            shared = flight.result
            response = shared.response
            scope.note_coalesced(response.transactions, response.price, wait_ms)
            ledger.note_coalesced_savings(response.transactions, response.price)
            metrics.counter("fetch_coalesced").inc()
            metrics.histogram("fetch_coalesce_wait_us").observe(
                wait_ms * 1000.0
            )
            metrics.counter("dollars_saved_coalescing").inc(response.price)
            return FetchResult(
                response=response,
                attempts=1,
                elapsed_ms=shared.elapsed_ms,
                coalesced=True,
                saved_transactions=response.transactions,
                saved_price=response.price,
            )

    def _finish_call_span(self, span, outcome) -> None:
        """Stamp one detached ``market_call`` span from its outcome.

        ``transactions``/``price`` are what the call actually *spent*
        (billed minus wasted) so call spans sum to the query's stats;
        billed/wasted are kept separately for dollar attribution.
        """
        if isinstance(outcome, FailedFetch):
            error = outcome.error
            attempts = getattr(error, "attempts", 0)
            span.set(
                failed=True,
                error=str(error),
                attempts=attempts,
                retries=max(0, attempts - 1),
                replayed=False,
                rows=0,
                transactions=error.billed_transactions
                - error.wasted_transactions,
                price=error.billed_price - error.wasted_price,
                billed_transactions=error.billed_transactions,
                billed_price=error.billed_price,
                wasted_transactions=error.wasted_transactions,
                wasted_price=error.wasted_price,
                elapsed_ms=error.elapsed_ms,
            )
        elif isinstance(outcome, CoveredSkip):
            span.set(
                failed=False,
                covered_skip=True,
                attempts=0,
                retries=0,
                replayed=False,
                rows=0,
                transactions=0,
                price=0.0,
                billed_transactions=0,
                billed_price=0.0,
                wasted_transactions=0,
                wasted_price=0.0,
                elapsed_ms=0.0,
            )
        else:
            span.set(
                failed=False,
                attempts=outcome.attempts,
                retries=outcome.retries,
                replayed=outcome.replayed,
                rows=outcome.response.record_count,
                transactions=outcome.billed_transactions,
                price=outcome.billed_price,
                billed_transactions=outcome.billed_transactions,
                billed_price=outcome.billed_price,
                wasted_transactions=0,
                wasted_price=0.0,
                elapsed_ms=outcome.elapsed_ms,
            )
            if outcome.coalesced:
                span.set(
                    coalesced=True,
                    saved_transactions=outcome.saved_transactions,
                    saved_price=outcome.saved_price,
                )
        span.finish(self.context.tracer.clock())

    def _empty_relation(self, table: str) -> Relation:
        self._staged.setdefault(table.lower(), [])
        return Relation(
            RowLayout.for_table(table, self.context.schema_of(table).names),
            [],
        )

    # ------------------------------------------------------------------- staging

    def _build_staging(self, query: LogicalQuery) -> Database:
        staging = Database()
        tracer = self.context.tracer
        tracing = tracer.enabled
        for table_name in query.tables:
            if self.context.is_market(table_name):
                schema = self.context.schema_of(table_name)
                staged = Table(table_name, schema)
                staged.extend(self._staged.get(table_name.lower(), []))
                staging.add(staged)
                rows = len(staged)
            else:
                local = self.context.local_db.table(table_name)
                staging.add(local)
                rows = len(local)
            if tracing:
                tracer.event("stage", table=table_name, rows=rows)
        return staging
