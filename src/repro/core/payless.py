"""The PayLess facade — the system of Figure 3.

One :class:`PayLess` instance is one buyer organization's installation:
it holds the market connection (auth is implicit in the simulator), the
semantic store, the learned statistics, the local DBMS, and exposes the
SQL interface end users see.

Typical use::

    market = DataMarket(); market.publish(dataset)
    payless = PayLess(market)
    payless.register_dataset("WHW")
    result = payless.query(
        "SELECT Temperature FROM Station, Weather WHERE ...", params
    )
    print(result.rows, result.transactions)

The ``variant`` class methods build the evaluation's configurations:
full PayLess, PayLess without semantic query rewriting, and the
Minimizing-Calls competitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.baselines import DownloadAllStrategy
from repro.core.context import PlanningContext
from repro.core.executor import ExecutionResult, Executor
from repro.core.optimizer import Optimizer, OptimizerOptions, PlanningResult
from repro.core.plans import PlanNode
from repro.core.rewriter import SemanticRewriter
from repro.errors import PlanningError
from repro.market.server import DataMarket
from repro.relational.database import Database
from repro.relational.operators import Relation
from repro.relational.query import LogicalQuery
from repro.relational.table import Table
from repro.semstore.consistency import ConsistencyPolicy
from repro.semstore.space import BoxSpace
from repro.semstore.store import SemanticStore
from repro.sqlparser.analyzer import compile_sql
from repro.stats.catalog import Catalog


@dataclass(frozen=True)
class QueryLogEntry:
    """One line of the installation's query history."""

    sequence: int
    sql_tables: tuple[str, ...]
    transactions: int
    calls: int
    evaluated_plans: int
    used_bind_join: bool

    def __repr__(self) -> str:
        tables = ", ".join(self.sql_tables)
        return (
            f"#{self.sequence} [{tables}] {self.transactions} trans., "
            f"{self.calls} calls"
        )


@dataclass
class QueryResult:
    """What a user query returns: rows plus the money it cost."""

    relation: Relation
    transactions: int
    price: float
    calls: int
    fetched_records: int
    plan: PlanNode
    evaluated_plans: int
    enumerated_boxes: int
    kept_boxes: int
    #: Simulated wall-clock the market calls would have taken (serial sum).
    market_time_ms: float = 0.0
    #: Simulated wall-clock under the installation's concurrency limit
    #: (critical path of the parallel fetch schedule).
    market_time_critical_path_ms: float = 0.0

    @property
    def rows(self) -> list[tuple]:
        return self.relation.rows

    @property
    def columns(self) -> list[str]:
        return [column for __, column in self.relation.layout.columns]


class PayLess:
    """A buyer-side installation of the PayLess system."""

    def __init__(
        self,
        market: DataMarket,
        local_db: Database | None = None,
        consistency: ConsistencyPolicy | None = None,
        options: OptimizerOptions | None = None,
        prune_bounding_boxes: bool = True,
        statistic: str = "isomer",
        max_concurrent_calls: int | None = None,
    ):
        self.market = market
        self.options = options or OptimizerOptions()
        #: Which updatable statistic drives estimation ("isomer",
        #: "independence", or "uniform"; see repro.stats.interface).
        self.statistic = statistic
        self.local_db = local_db or Database()
        self.store = SemanticStore(consistency)
        self.catalog = Catalog()
        self.rewriter = SemanticRewriter(
            self.store,
            self.catalog,
            enabled=self.options.use_sqr,
            prune=prune_bounding_boxes,
        )
        self.context = PlanningContext(
            market=self.market,
            catalog=self.catalog,
            store=self.store,
            rewriter=self.rewriter,
            local_db=self.local_db,
            max_concurrent_calls=max_concurrent_calls,
        )
        for table in self.local_db:
            self.context.register_local(table)
        self.total_transactions = 0
        self.total_price = 0.0
        self.total_calls = 0
        self.queries_executed = 0
        #: Per-query history (most recent last); see :class:`QueryLogEntry`.
        self.history: list[QueryLogEntry] = []

    # -- configuration shortcuts -------------------------------------------------

    @classmethod
    def full(cls, market: DataMarket, **kwargs: Any) -> "PayLess":
        """The complete system: SQR + all search-space theorems."""
        return cls(market, options=OptimizerOptions(), **kwargs)

    @classmethod
    def without_sqr(cls, market: DataMarket, **kwargs: Any) -> "PayLess":
        """The "PayLess w/o SQR" arm of Figure 10."""
        return cls(market, options=OptimizerOptions(use_sqr=False), **kwargs)

    @classmethod
    def minimizing_calls(cls, market: DataMarket, **kwargs: Any) -> "PayLess":
        """The Minimizing-Calls competitor of Figure 10."""
        return cls(
            market,
            options=OptimizerOptions(use_sqr=False, objective="calls"),
            **kwargs,
        )

    # -- registration ---------------------------------------------------------------

    def register_dataset(self, name: str) -> None:
        """Register with the market for ``name`` and ingest its basic stats."""
        dataset = self.market.dataset(name)
        for market_table in dataset:
            statistics = market_table.basic_statistics()
            space = BoxSpace.from_table(
                market_table.name,
                market_table.schema,
                market_table.pattern,
                statistics,
            )
            self.catalog.register(
                market_table.name,
                market_table.schema,
                space,
                statistics,
                statistic=self.statistic,
            )
            self.store.register_table(space, market_table.schema)
            self.context.register_market_table(
                dataset.name, market_table.name, market_table.schema
            )

    def add_local_table(self, table: Table) -> None:
        """Add a buyer-side table usable in queries alongside market data."""
        self.local_db.add(table)
        self.context.register_local(table)

    # -- querying ---------------------------------------------------------------------

    def compile(self, sql: str, params: Sequence[Any] = ()) -> LogicalQuery:
        """Parse + analyze ``sql`` against registered tables."""
        return compile_sql(sql, self.context, params)

    def explain(self, sql: str, params: Sequence[Any] = ()) -> PlanningResult:
        """Optimize without executing; the plan's ``describe()`` is printable."""
        query = self.compile(sql, params)
        return Optimizer(self.context, self.options).optimize(query)

    def query(self, sql: str, params: Sequence[Any] = ()) -> QueryResult:
        """Optimize and execute ``sql``, paying as little as possible."""
        logical = self.compile(sql, params)
        return self.execute_logical(logical)

    def execute_logical(self, logical: LogicalQuery) -> QueryResult:
        """Run an already-compiled query (the benchmark harness fast path)."""
        planning = Optimizer(self.context, self.options).optimize(logical)
        execution = Executor(self.context).execute(logical, planning.plan)
        self.total_transactions += execution.transactions
        self.total_price += execution.price
        self.total_calls += execution.calls
        self.queries_executed += 1
        from repro.core.plans import JoinNode

        def _has_bind(node) -> bool:
            if isinstance(node, JoinNode):
                return node.bind or _has_bind(node.left) or _has_bind(node.right)
            return False

        self.history.append(
            QueryLogEntry(
                sequence=self.queries_executed,
                sql_tables=tuple(logical.tables),
                transactions=execution.transactions,
                calls=execution.calls,
                evaluated_plans=planning.evaluated_plans,
                used_bind_join=_has_bind(planning.plan),
            )
        )
        return QueryResult(
            relation=execution.relation,
            transactions=execution.transactions,
            price=execution.price,
            calls=execution.calls,
            fetched_records=execution.fetched_records,
            plan=planning.plan,
            evaluated_plans=planning.evaluated_plans,
            enumerated_boxes=planning.enumerated_boxes,
            kept_boxes=planning.kept_boxes,
            market_time_ms=execution.market_time_ms,
            market_time_critical_path_ms=execution.market_time_critical_path_ms,
        )

    def query_batch(
        self, batch: Sequence[tuple[str, Sequence[Any]]]
    ) -> "BatchResult":
        """Multi-query optimization: execute a batch in a cost-aware order.

        The paper's conclusion sketches this as future work; see
        :mod:`repro.core.batch` for the ordering heuristic.  Results come
        back in submission order.
        """
        from repro.core.batch import execute_batch

        return execute_batch(self, batch)

    # -- the Download-All comparison ------------------------------------------------

    def download_all_strategy(self) -> DownloadAllStrategy:
        """A Download-All baseline sharing this instance's registrations."""
        return DownloadAllStrategy(self.context)

    # -- reporting -------------------------------------------------------------------

    def bill(self) -> str:
        return (
            f"{self.queries_executed} queries, {self.total_calls} calls, "
            f"{self.total_transactions} transactions, ${self.total_price:g}"
        )
