"""The PayLess facade — the system of Figure 3.

One :class:`PayLess` instance is one buyer organization's installation:
it holds the market connection (auth is implicit in the simulator), the
semantic store, the learned statistics, the local DBMS, and exposes the
SQL interface end users see.

Typical use::

    market = DataMarket(); market.publish(dataset)
    payless = PayLess(market)
    payless.register_dataset("WHW")
    result = payless.query(
        "SELECT Temperature FROM Station, Weather WHERE ...", params
    )
    print(result.rows, result.stats.transactions)

The ``variant`` class methods build the evaluation's configurations:
full PayLess, PayLess without semantic query rewriting, and the
Minimizing-Calls competitor.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from repro.core.baselines import DownloadAllStrategy
from repro.core.context import PlanningContext
from repro.core.executor import ExecutionResult, Executor, FailedFetch
from repro.core.objectives import (
    SERVICE_TIERS,
    PlanObjective,
    QueryOptions,
    ServiceTier,
)
from repro.core.optimizer import Optimizer, OptimizerOptions, PlanningResult
from repro.core.plancache import PlanCache
from repro.core.plans import PlanNode
from repro.core.rewriter import SemanticRewriter
from repro.errors import PlanningError
from repro.market.server import DataMarket
from repro.market.transport import TransportConfig
from repro.obs.explain import render_explain, render_explain_analyze
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import QueryTrace, Tracer
from repro.relational.database import Database
from repro.relational.engine import DEFAULT_EXECUTION, ExecutionConfig
from repro.relational.operators import Relation
from repro.relational.query import LogicalQuery
from repro.relational.table import Table
from repro.semstore.consistency import ConsistencyPolicy
from repro.semstore.space import BoxSpace
from repro.semstore.store import SemanticStore
from repro.sqlparser.analyzer import analyze, compile_sql
from repro.sqlparser.ast import SelectStatement
from repro.stats.catalog import Catalog

#: Sentinel distinguishing "no cache key computed yet" from "don't cache".
_UNSET = object()


@dataclass(frozen=True)
class QueryLogEntry:
    """One line of the installation's query history."""

    sequence: int
    sql_tables: tuple[str, ...]
    transactions: int
    calls: int
    evaluated_plans: int
    used_bind_join: bool

    def __repr__(self) -> str:
        tables = ", ".join(self.sql_tables)
        return (
            f"#{self.sequence} [{tables}] {self.transactions} trans., "
            f"{self.calls} calls"
        )


@dataclass(frozen=True)
class QueryStats:
    """Everything one query cost and went through, in one structure.

    Replaces the ad-hoc stat attributes that used to accrete directly on
    :class:`QueryResult`; read it as ``result.stats``.
    """

    #: Market transactions billed (and *spent* — wasted charges are
    #: reported separately below).
    transactions: int = 0
    price: float = 0.0
    #: Billed REST calls.
    calls: int = 0
    records: int = 0
    #: Candidate (sub)plans the optimizer evaluated (Figure 14).
    evaluated_plans: int = 0
    #: Bounding boxes Algorithm 1 generated / kept after pruning (Fig 15).
    enumerated_boxes: int = 0
    kept_boxes: int = 0
    #: Simulated wall-clock of the market calls (serial sum, including
    #: transport retries and backoff waits).
    market_time_ms: float = 0.0
    #: Simulated wall-clock under the installation's concurrency limit
    #: (critical path of the parallel fetch schedule).
    market_time_critical_path_ms: float = 0.0
    #: Money-safe transport accounting (see repro.market.transport).
    retries: int = 0
    faults_injected: int = 0
    #: Responses served from the market's idempotency cache for free.
    replays: int = 0
    #: Charges billed for calls whose data never arrived (also tracked
    #: market-wide in ``ledger.wasted_on_failures``).
    wasted_transactions: int = 0
    wasted_price: float = 0.0
    #: Regions that could not be bought (non-empty only under
    #: ``partial_results``; otherwise the query raises instead).
    failed_fetches: tuple[FailedFetch, ...] = ()
    #: Singleflight coalescing under concurrent serving (see
    #: :mod:`repro.serve`): fetches answered by joining another session's
    #: in-flight call, the bill those avoided, and remainder boxes found
    #: already covered at issue time.  All zero outside a scheduler.
    coalesced_fetches: int = 0
    coalesced_savings_transactions: int = 0
    coalesced_savings_price: float = 0.0
    covered_skips: int = 0
    #: Adaptive re-optimization (``QueryOptions(adaptive=...)``): mid-query
    #: re-plans attempted, and the planner's estimate of the dollars the
    #: adopted suffix plans saved versus staying the course.  Zero when
    #: adaptive mode is off (the default) or never tripped.
    replans: int = 0
    replan_dollars_saved_est: float = 0.0
    #: Which fetch driver executed the market calls ("threaded" — the
    #: default, byte-identical to historical behaviour — or "async", the
    #: pipelined event-loop driver of :mod:`repro.market.aio`) and how
    #: many table accesses were answered by a cross-access prefetch
    #: scheduled at query start (async only; 0 under "threaded").
    transport_mode: str = "threaded"
    prefetch_hits: int = 0
    #: Snapshot of the installation's metrics registry taken right after
    #: this query (see :mod:`repro.obs.metrics` for the names).
    metrics: dict = field(default_factory=dict)

    @property
    def fetched_records(self) -> int:
        return self.records

    @property
    def failed_calls(self) -> int:
        return len(self.failed_fetches)

    @property
    def complete(self) -> bool:
        """Whether every region the plan needed was actually bought."""
        return not self.failed_fetches


#: QueryResult attributes that now live on ``result.stats``.
_FORWARDED_STATS = (
    "transactions",
    "price",
    "calls",
    "fetched_records",
    "evaluated_plans",
    "enumerated_boxes",
    "kept_boxes",
    "market_time_ms",
    "market_time_critical_path_ms",
    "retries",
    "faults_injected",
    "replays",
    "wasted_transactions",
    "wasted_price",
    "failed_fetches",
    "complete",
)


@dataclass
class QueryResult:
    """What a user query returns: rows, the chosen plan, and its stats.

    The per-query statistics live in ``result.stats`` (a
    :class:`QueryStats`); the historical flat attributes
    (``result.transactions`` etc.) survive as deprecated forwarding
    properties.
    """

    relation: Relation
    plan: PlanNode
    stats: QueryStats = field(default_factory=QueryStats)
    #: The query's span tree, when the installation's tracer was enabled.
    trace: QueryTrace | None = None

    @property
    def rows(self) -> list[tuple]:
        return self.relation.rows

    @property
    def columns(self) -> list[str]:
        return [column for __, column in self.relation.layout.columns]


def _forwarding_property(name: str) -> property:
    def getter(self: QueryResult):
        warnings.warn(
            f"QueryResult.{name} is deprecated; read result.stats.{name}",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(self.stats, name)

    getter.__name__ = name
    getter.__doc__ = f"Deprecated: use ``result.stats.{name}``."
    return property(getter)


for _name in _FORWARDED_STATS:
    setattr(QueryResult, _name, _forwarding_property(_name))
del _name


@dataclass
class Explanation:
    """What :meth:`PayLess.explain` returns: the plan plus its rendering.

    Forwards the :class:`~repro.core.optimizer.PlanningResult` attributes
    (``plan``, ``cost``, ``evaluated_plans``, ...) so callers that treated
    ``explain()`` as returning the planning result keep working;
    ``str(explanation)`` (or :meth:`render`) is the EXPLAIN text.  After
    :meth:`PayLess.explain_analyze`, ``stats``/``trace``/``result`` carry
    the executed query's actuals and the rendering annotates each node.
    """

    planning: PlanningResult
    label: str | None = None
    stats: QueryStats | None = None
    trace: QueryTrace | None = None
    result: QueryResult | None = None

    @property
    def plan(self) -> PlanNode:
        return self.planning.plan

    @property
    def cost(self) -> float:
        return self.planning.cost

    @property
    def evaluated_plans(self) -> int:
        return self.planning.evaluated_plans

    @property
    def enumerated_boxes(self) -> int:
        return self.planning.enumerated_boxes

    @property
    def kept_boxes(self) -> int:
        return self.planning.kept_boxes

    @property
    def pruned_plans(self) -> int:
        return self.planning.pruned_plans

    @property
    def from_cache(self) -> bool:
        return self.planning.from_cache

    @property
    def analyzed(self) -> bool:
        return self.stats is not None

    def render(self) -> str:
        if self.stats is not None:
            return render_explain_analyze(
                self.planning, self.stats, self.trace, self.label
            )
        return render_explain(self.planning, self.label)

    def __str__(self) -> str:
        return self.render()


class PayLess:
    """A buyer-side installation of the PayLess system.

    Configuration lives in one documented place:
    :class:`~repro.core.objectives.QueryOptions`, passed as ``options=``.
    The historical scattered keywords (``transport=``, ``engine=``,
    ``max_concurrent_calls=``, ``prune_bounding_boxes=`` and
    ``options=OptimizerOptions(...)``) keep working through
    ``DeprecationWarning`` forwarders that fold them into the same
    :class:`QueryOptions`.
    """

    def __init__(
        self,
        market: DataMarket,
        local_db: Database | None = None,
        consistency: ConsistencyPolicy | None = None,
        options: QueryOptions | OptimizerOptions | None = None,
        prune_bounding_boxes: bool | None = None,
        statistic: str = "isomer",
        max_concurrent_calls: int | None = None,
        transport: TransportConfig | None = None,
        tracing: bool = False,
        metrics: MetricsRegistry | None = None,
        engine: str | None = None,
    ):
        self.market = market
        #: The one documented configuration surface (see
        #: :class:`~repro.core.objectives.QueryOptions`).
        self.query_options = self._coerce_options(
            options,
            prune_bounding_boxes=prune_bounding_boxes,
            max_concurrent_calls=max_concurrent_calls,
            transport=transport,
            engine=engine,
        )
        #: The planner's derived view of the configuration.  Public
        #: because existing call sites read ``payless.options.use_sqr``
        #: and friends; prefer ``payless.query_options`` going forward.
        self.options = self.query_options.optimizer_options()
        #: The money-safe transport configuration (retries, backoff,
        #: circuit breakers, fault injection, partial results).
        self.transport_config = (
            self.query_options.transport_config() or TransportConfig()
        )
        #: Observability: structured tracing (off by default — near-zero
        #: overhead; flip ``payless.tracer.enabled`` or use
        #: :meth:`explain_analyze` for one query) and the metrics registry
        #: (the process-wide default unless a private one is handed in).
        self.tracer = Tracer(enabled=tracing)
        self.metrics = metrics if metrics is not None else REGISTRY
        #: Which local-evaluation engine answers queries once the data is
        #: staged: "vectorized" (columnar batches + compiled kernels, the
        #: default) or "reference" (the row-at-a-time differential oracle).
        self.execution = (
            ExecutionConfig(engine=self.query_options.engine)
            if self.query_options.engine
            else DEFAULT_EXECUTION
        )
        #: Which updatable statistic drives estimation ("isomer",
        #: "independence", or "uniform"; see repro.stats.interface).
        self.statistic = statistic
        self.local_db = local_db or Database()
        self.store = SemanticStore(consistency)
        self.catalog = Catalog()
        self.rewriter = SemanticRewriter(
            self.store,
            self.catalog,
            enabled=self.options.use_sqr,
            prune=self.query_options.prune_bounding_boxes,
        )
        self.context = PlanningContext(
            market=self.market,
            catalog=self.catalog,
            store=self.store,
            rewriter=self.rewriter,
            local_db=self.local_db,
            max_concurrent_calls=self.query_options.max_concurrent_calls,
            transport=self.transport_config,
            tracer=self.tracer,
            metrics=self.metrics,
            execution=self.execution,
            transport_mode=self.query_options.transport_mode,
            async_pool_size=self.query_options.async_pool_size,
            prefetch=self.query_options.prefetch,
        )
        for table in self.local_db:
            self.context.register_local(table)
        #: The epoch-keyed parameterized plan cache: repeat templates skip
        #: parse + analyze + planning entirely (see repro.core.plancache).
        self.plan_cache = PlanCache(
            self.store,
            capacity=self.options.plan_cache_size,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self.total_transactions = 0
        self.total_price = 0.0
        self.total_calls = 0
        self.queries_executed = 0
        #: The failure/savings side of the money picture — the buckets the
        #: v1 JSON persistence silently dropped (tracked here so durable
        #: restarts resume the full split, not just the spent series).
        self.total_wasted_transactions = 0
        self.total_wasted_price = 0.0
        self.total_coalesced_fetches = 0
        self.total_coalesced_transactions = 0
        self.total_coalesced_price = 0.0
        #: Per-query history (most recent last); see :class:`QueryLogEntry`.
        self.history: list[QueryLogEntry] = []
        #: Guards the running totals and the history list: under the
        #: concurrent serving front-end (:mod:`repro.serve`) many worker
        #: threads finish queries against this one installation.
        self._accounting_lock = threading.Lock()
        #: Durable WAL backend (``None`` = in-memory only); see
        #: :mod:`repro.durable`.  Built here so every layer — executor,
        #: transport, store clock — shares the one instance.
        self.durability = None
        durability_config = self.query_options.durability_config()
        if durability_config is not None:
            from repro.durable.backend import DurableStateBackend

            self.durability = DurableStateBackend(durability_config)
            self.durability.attach(self)
            self.context.durability = self.durability
            self.context.transport.durability = self.durability
            self.store.on_clock_advance = self.durability.log_clock

    @staticmethod
    def _coerce_options(
        options: QueryOptions | OptimizerOptions | None,
        prune_bounding_boxes: bool | None,
        max_concurrent_calls: int | None,
        transport: TransportConfig | None,
        engine: str | None,
    ) -> QueryOptions:
        """Fold the legacy keyword surface into one :class:`QueryOptions`.

        Every deprecated spelling warns at the ``PayLess(...)`` call site
        (``stacklevel=3``: this helper + ``__init__`` + the caller).
        """
        if isinstance(options, OptimizerOptions):
            warnings.warn(
                "PayLess(options=OptimizerOptions(...)) is deprecated; "
                "pass options=QueryOptions(...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            query_options = QueryOptions.from_optimizer_options(options)
        elif options is None:
            query_options = QueryOptions()
        else:
            query_options = options
        overlays: dict[str, Any] = {}
        for name, value in (
            ("prune_bounding_boxes", prune_bounding_boxes),
            ("max_concurrent_calls", max_concurrent_calls),
            ("transport", transport),
            ("engine", engine),
        ):
            if value is None:
                continue
            warnings.warn(
                f"PayLess({name}=...) is deprecated; "
                f"pass options=QueryOptions({name}=...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            overlays[name] = value
        return replace(query_options, **overlays) if overlays else query_options

    # -- configuration shortcuts -------------------------------------------------

    @classmethod
    def full(cls, market: DataMarket, **kwargs: Any) -> "PayLess":
        """The complete system: SQR + all search-space theorems."""
        kwargs.setdefault("options", QueryOptions())
        return cls(market, **kwargs)

    @classmethod
    def without_sqr(cls, market: DataMarket, **kwargs: Any) -> "PayLess":
        """The "PayLess w/o SQR" arm of Figure 10."""
        kwargs.setdefault("options", QueryOptions(use_sqr=False))
        return cls(market, **kwargs)

    @classmethod
    def minimizing_calls(cls, market: DataMarket, **kwargs: Any) -> "PayLess":
        """The Minimizing-Calls competitor of Figure 10."""
        kwargs.setdefault(
            "options", QueryOptions(use_sqr=False, cost_metric="calls")
        )
        return cls(market, **kwargs)

    # -- registration ---------------------------------------------------------------

    def register_dataset(self, name: str) -> None:
        """Register with the market for ``name`` and ingest its basic stats."""
        dataset = self.market.dataset(name)
        for market_table in dataset:
            statistics = market_table.basic_statistics()
            space = BoxSpace.from_table(
                market_table.name,
                market_table.schema,
                market_table.pattern,
                statistics,
            )
            self.catalog.register(
                market_table.name,
                market_table.schema,
                space,
                statistics,
                statistic=self.statistic,
            )
            self.store.register_table(space, market_table.schema)
            self.context.register_market_table(
                dataset.name, market_table.name, market_table.schema
            )

    def add_local_table(self, table: Table) -> None:
        """Add a buyer-side table usable in queries alongside market data."""
        self.local_db.add(table)
        self.context.register_local(table)

    # -- querying ---------------------------------------------------------------------

    def compile(self, sql: str, params: Sequence[Any] = ()) -> LogicalQuery:
        """Parse + analyze ``sql`` against registered tables."""
        return compile_sql(sql, self.context, params)

    def _resolve_objective(
        self, objective: PlanObjective | ServiceTier | str | None
    ) -> PlanObjective:
        """The effective objective of one call.

        ``None`` means the installation default
        (``query_options.objective``); a :class:`ServiceTier` contributes
        its objective; a string names a built-in tier (``"realtime"``) or
        parses as an objective spec (``"dollars_under_latency_ms:500"``).
        """
        if objective is None:
            return self.query_options.objective
        if isinstance(objective, PlanObjective):
            return objective
        if isinstance(objective, ServiceTier):
            return objective.objective
        if isinstance(objective, str):
            tier = SERVICE_TIERS.get(objective.lower())
            if tier is not None:
                return tier.objective
            return PlanObjective.parse(objective)
        raise PlanningError(
            "objective must be a PlanObjective, a ServiceTier, a tier "
            f"name, or an objective spec string; got {objective!r}"
        )

    def _options_for(self, objective: PlanObjective) -> OptimizerOptions:
        if objective == self.options.plan_objective:
            return self.options
        return replace(self.options, plan_objective=objective)

    def _planner_fingerprint(self, objective: PlanObjective) -> tuple:
        """Everything besides the query itself that can change planning.

        Part of every plan-cache key: two installations (or one whose
        configuration changed) must never serve each other's plans — and
        two objectives over the same template must never share a cached
        plan, hence ``objective.fingerprint()`` below.
        """
        options = self.options
        transport = self.transport_config
        return (
            options.use_sqr,
            options.use_theorems,
            options.objective,
            options.max_bind_attrs,
            options.prune,
            objective.fingerprint(),
            self.execution.engine,
            self.rewriter.prune,
            self.statistic,
            transport.partial_results,
            transport.max_retries,
            transport.idempotency,
            transport.faults is not None,
            # Adaptive runs never cache their mid-flight suffix plans, but
            # the *static* plan an adaptive installation starts from is
            # keyed apart anyway so cache hygiene is provable per policy.
            (
                self.query_options.adaptive.fingerprint()
                if self.query_options.adaptive is not None
                else None
            ),
        )

    def _plan_statement(
        self,
        statement: SelectStatement,
        params: Sequence[Any],
        objective: PlanObjective | ServiceTier | str | None = None,
    ) -> tuple[PlanningResult, LogicalQuery]:
        """Plan a parsed template through the cache, without executing."""
        resolved = self._resolve_objective(objective)
        key = self.plan_cache.statement_key(
            statement, params, self._planner_fingerprint(resolved)
        )
        entry = self.plan_cache.lookup(key)
        if entry is not None:
            return replace(entry.planning, cache_status="hit"), entry.logical
        logical = analyze(statement, self.context, params)
        planning = Optimizer(
            self.context, self._options_for(resolved)
        ).optimize(logical)
        planning.cache_status = "miss" if self.plan_cache.enabled else "off"
        self.plan_cache.insert(key, logical, planning)
        return planning, logical

    def explain(
        self,
        sql: str,
        params: Sequence[Any] = (),
        objective: PlanObjective | ServiceTier | str | None = None,
    ) -> Explanation:
        """Optimize without executing: no market call, no billing.

        ``str(...)`` of the returned :class:`Explanation` is the EXPLAIN
        text; it also forwards every planning-result attribute (``plan``,
        ``cost``, ``evaluated_plans``, ...), so existing callers keep
        working unchanged.  Planning goes through the plan cache: a repeat
        EXPLAIN (or a later identical query) reuses the cached plan as
        long as the store epochs it was stamped with still hold.

        ``objective`` overrides the installation default for this one
        call (see :meth:`_resolve_objective` for the accepted forms).
        """
        statement = self.plan_cache.parse_sql(sql)
        planning, __ = self._plan_statement(statement, params, objective)
        return Explanation(planning=planning, label=sql)

    def explain_analyze(
        self,
        sql: str,
        params: Sequence[Any] = (),
        objective: PlanObjective | ServiceTier | str | None = None,
    ) -> Explanation:
        """Execute ``sql`` with tracing forced on; render est-vs-actuals.

        The tracer is enabled for exactly this one query and restored
        afterwards, so an installation running with tracing off pays the
        tracing overhead only when explicitly asked to ANALYZE.
        """
        tracer = self.tracer
        previous = tracer.enabled
        tracer.enabled = True
        try:
            tracer.begin_query(sql)
            try:
                with tracer.span("parse"):
                    statement = self.plan_cache.parse_sql(sql)
            except BaseException:
                tracer.end_query()
                raise
            result, planning = self._execute_statement(
                statement, params, objective
            )
        finally:
            tracer.enabled = previous
        return Explanation(
            planning=planning,
            label=sql,
            stats=result.stats,
            trace=result.trace,
            result=result,
        )

    def query(
        self,
        sql: str,
        params: Sequence[Any] = (),
        objective: PlanObjective | ServiceTier | str | None = None,
    ) -> QueryResult:
        """Optimize and execute ``sql``, paying as little as possible.

        ``objective`` overrides the installation default for this one
        call: a :class:`PlanObjective`, a :class:`ServiceTier`, a tier
        name, or an objective spec string.
        """
        tracer = self.tracer
        if not tracer.enabled:
            statement = self.plan_cache.parse_sql(sql)
            result, __ = self._execute_statement(statement, params, objective)
            return result
        tracer.begin_query(sql)
        try:
            with tracer.span("parse"):
                statement = self.plan_cache.parse_sql(sql)
        except BaseException:
            tracer.end_query()
            raise
        result, __ = self._execute_statement(statement, params, objective)
        return result

    def execute_statement(
        self,
        statement: SelectStatement,
        params: Sequence[Any] = (),
        objective: PlanObjective | ServiceTier | str | None = None,
    ) -> QueryResult:
        """Run an already-parsed statement (the :class:`PreparedQuery` path).

        Planning is served from the plan cache when the template+params
        were planned before at the current store epochs; otherwise the
        statement is re-analyzed and planned fresh (and cached).
        """
        result, __ = self._execute_statement(statement, params, objective)
        return result

    def _execute_statement(
        self,
        statement: SelectStatement,
        params: Sequence[Any],
        objective: PlanObjective | ServiceTier | str | None = None,
    ) -> tuple[QueryResult, PlanningResult]:
        tracer = self.tracer
        resolved = self._resolve_objective(objective)
        # Open the trace before the cache lookup so its hit/miss event
        # lands inside this query's span tree (the PreparedQuery path —
        # query()/explain_analyze() already opened it around parsing).
        if tracer.enabled and tracer.active is None:
            tracer.begin_query(
                ", ".join(ref.name for ref in statement.tables)
            )
        try:
            key = self.plan_cache.statement_key(
                statement, params, self._planner_fingerprint(resolved)
            )
            entry = self.plan_cache.lookup(key)
            if entry is not None:
                return self._execute(
                    entry.logical,
                    planning=replace(entry.planning, cache_status="hit"),
                    objective=resolved,
                )
            logical = analyze(statement, self.context, params)
        except BaseException:
            # _execute() closes the trace on its own failures; anything
            # raised before it (analysis errors) must close it here.
            if tracer.enabled and tracer.active is not None:
                tracer.end_query()
            raise
        return self._execute(logical, cache_key=key, objective=resolved)

    def execute_logical(
        self,
        logical: LogicalQuery,
        objective: PlanObjective | ServiceTier | str | None = None,
    ) -> QueryResult:
        """Run an already-compiled query (the benchmark harness fast path)."""
        result, __ = self._execute(logical, objective=objective)
        return result

    def _execute(
        self,
        logical: LogicalQuery,
        planning: PlanningResult | None = None,
        cache_key: Any = _UNSET,
        objective: PlanObjective | ServiceTier | str | None = None,
    ) -> tuple[QueryResult, PlanningResult]:
        tracer = self.tracer
        tracing = tracer.enabled
        resolved = self._resolve_objective(objective)
        # query()/explain_analyze() open the trace around parsing; a
        # directly-executed logical query opens it here instead.
        if tracing and tracer.active is None:
            tracer.begin_query(", ".join(logical.tables))
        try:
            if planning is None and cache_key is _UNSET:
                # execute_logical() path: key on the logical query itself.
                cache_key = self.plan_cache.logical_key(
                    logical, self._planner_fingerprint(resolved)
                )
                entry = self.plan_cache.lookup(cache_key)
                if entry is not None:
                    planning = replace(entry.planning, cache_status="hit")
            if planning is None:
                planning = Optimizer(
                    self.context, self._options_for(resolved)
                ).optimize(logical)
                planning.cache_status = (
                    "miss" if self.plan_cache.enabled else "off"
                )
                self.plan_cache.insert(cache_key, logical, planning)
            executor = Executor(
                self.context,
                adaptive=self.query_options.adaptive,
                optimizer_options=self._options_for(resolved),
            )
            try:
                execution = executor.execute(logical, planning.plan)
            finally:
                executor.close()
        except BaseException:
            if tracing:
                tracer.end_query()
            raise
        from repro.core.plans import JoinNode

        def _has_bind(node) -> bool:
            if isinstance(node, JoinNode):
                return node.bind or _has_bind(node.left) or _has_bind(node.right)
            return False

        with self._accounting_lock:
            self.total_transactions += execution.transactions
            self.total_price += execution.price
            self.total_calls += execution.calls
            self.queries_executed += 1
            self.total_wasted_transactions += execution.wasted_transactions
            self.total_wasted_price += execution.wasted_price
            self.total_coalesced_fetches += execution.coalesced_fetches
            self.total_coalesced_transactions += (
                execution.coalesced_savings_transactions
            )
            self.total_coalesced_price += execution.coalesced_savings_price
            self.history.append(
                QueryLogEntry(
                    sequence=self.queries_executed,
                    sql_tables=tuple(logical.tables),
                    transactions=execution.transactions,
                    calls=execution.calls,
                    evaluated_plans=planning.evaluated_plans,
                    used_bind_join=_has_bind(planning.plan),
                )
            )
        durability = self.durability
        if durability is not None:
            # Journal the query's totals delta (group-committing it), then
            # compact if the WAL grew past the threshold — here at the
            # query boundary, where no table lock is held.
            durability.log_query(execution)
            durability.maybe_compact()
        trace = tracer.end_query() if tracing else None
        metrics = self.metrics
        metrics.counter("queries").inc()
        metrics.counter("transactions_spent").inc(execution.transactions)
        metrics.counter("cents_spent").inc(execution.price * 100.0)
        if execution.wasted_price:
            metrics.counter("cents_wasted").inc(
                execution.wasted_price * 100.0
            )
        metrics.histogram("query_transactions").observe(
            execution.transactions
        )
        result = QueryResult(
            relation=execution.relation,
            plan=planning.plan,
            trace=trace,
            stats=QueryStats(
                transactions=execution.transactions,
                price=execution.price,
                calls=execution.calls,
                records=execution.fetched_records,
                evaluated_plans=planning.evaluated_plans,
                enumerated_boxes=planning.enumerated_boxes,
                kept_boxes=planning.kept_boxes,
                market_time_ms=execution.market_time_ms,
                market_time_critical_path_ms=(
                    execution.market_time_critical_path_ms
                ),
                retries=execution.retries,
                faults_injected=execution.faults_injected,
                replays=execution.replays,
                wasted_transactions=execution.wasted_transactions,
                wasted_price=execution.wasted_price,
                failed_fetches=execution.failed_fetches,
                coalesced_fetches=execution.coalesced_fetches,
                coalesced_savings_transactions=(
                    execution.coalesced_savings_transactions
                ),
                coalesced_savings_price=execution.coalesced_savings_price,
                covered_skips=execution.covered_skips,
                replans=execution.replans,
                replan_dollars_saved_est=execution.replan_dollars_saved_est,
                transport_mode=execution.transport_mode,
                prefetch_hits=execution.prefetch_hits,
                metrics=metrics.snapshot(),
            ),
        )
        return result, planning

    def query_batch(
        self, batch: Sequence[tuple[str, Sequence[Any]]]
    ) -> "BatchResult":
        """Multi-query optimization: execute a batch in a cost-aware order.

        The paper's conclusion sketches this as future work; see
        :mod:`repro.core.batch` for the ordering heuristic.  Results come
        back in submission order.
        """
        from repro.core.batch import execute_batch

        return execute_batch(self, batch)

    # -- durability lifecycle ---------------------------------------------------------

    def recover(self):
        """Rebuild durable state: snapshot + WAL replay + intent roll-forward.

        Call after dataset registration and before the first query (a
        no-op without a durability config).  Returns the
        :class:`~repro.durable.backend.RecoveryReport`, or ``None`` when
        the installation is in-memory only.
        """
        if self.durability is None:
            return None
        return self.durability.recover(self)

    def close(self) -> None:
        """Clean shutdown: group-commit and snapshot the durable state,
        and stop the async transport's event loop when one is attached.

        Safe to call repeatedly and without a durability config.
        """
        if self.durability is not None:
            self.durability.close()
        async_transport = getattr(self.context, "async_transport", None)
        if async_transport is not None:
            async_transport.close()

    def __enter__(self) -> "PayLess":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the Download-All comparison ------------------------------------------------

    def download_all_strategy(self) -> DownloadAllStrategy:
        """A Download-All baseline sharing this instance's registrations."""
        return DownloadAllStrategy(self.context)

    # -- reporting -------------------------------------------------------------------

    def bill(self) -> str:
        return (
            f"{self.queries_executed} queries, {self.total_calls} calls, "
            f"{self.total_transactions} transactions, ${self.total_price:g}"
        )
