"""The PayLess facade — the system of Figure 3.

One :class:`PayLess` instance is one buyer organization's installation:
it holds the market connection (auth is implicit in the simulator), the
semantic store, the learned statistics, the local DBMS, and exposes the
SQL interface end users see.

Typical use::

    market = DataMarket(); market.publish(dataset)
    payless = PayLess(market)
    payless.register_dataset("WHW")
    result = payless.query(
        "SELECT Temperature FROM Station, Weather WHERE ...", params
    )
    print(result.rows, result.stats.transactions)

The ``variant`` class methods build the evaluation's configurations:
full PayLess, PayLess without semantic query rewriting, and the
Minimizing-Calls competitor.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.baselines import DownloadAllStrategy
from repro.core.context import PlanningContext
from repro.core.executor import ExecutionResult, Executor, FailedFetch
from repro.core.optimizer import Optimizer, OptimizerOptions, PlanningResult
from repro.core.plans import PlanNode
from repro.core.rewriter import SemanticRewriter
from repro.errors import PlanningError
from repro.market.server import DataMarket
from repro.market.transport import TransportConfig
from repro.relational.database import Database
from repro.relational.operators import Relation
from repro.relational.query import LogicalQuery
from repro.relational.table import Table
from repro.semstore.consistency import ConsistencyPolicy
from repro.semstore.space import BoxSpace
from repro.semstore.store import SemanticStore
from repro.sqlparser.analyzer import compile_sql
from repro.stats.catalog import Catalog


@dataclass(frozen=True)
class QueryLogEntry:
    """One line of the installation's query history."""

    sequence: int
    sql_tables: tuple[str, ...]
    transactions: int
    calls: int
    evaluated_plans: int
    used_bind_join: bool

    def __repr__(self) -> str:
        tables = ", ".join(self.sql_tables)
        return (
            f"#{self.sequence} [{tables}] {self.transactions} trans., "
            f"{self.calls} calls"
        )


@dataclass(frozen=True)
class QueryStats:
    """Everything one query cost and went through, in one structure.

    Replaces the ad-hoc stat attributes that used to accrete directly on
    :class:`QueryResult`; read it as ``result.stats``.
    """

    #: Market transactions billed (and *spent* — wasted charges are
    #: reported separately below).
    transactions: int = 0
    price: float = 0.0
    #: Billed REST calls.
    calls: int = 0
    records: int = 0
    #: Candidate (sub)plans the optimizer evaluated (Figure 14).
    evaluated_plans: int = 0
    #: Bounding boxes Algorithm 1 generated / kept after pruning (Fig 15).
    enumerated_boxes: int = 0
    kept_boxes: int = 0
    #: Simulated wall-clock of the market calls (serial sum, including
    #: transport retries and backoff waits).
    market_time_ms: float = 0.0
    #: Simulated wall-clock under the installation's concurrency limit
    #: (critical path of the parallel fetch schedule).
    market_time_critical_path_ms: float = 0.0
    #: Money-safe transport accounting (see repro.market.transport).
    retries: int = 0
    faults_injected: int = 0
    #: Responses served from the market's idempotency cache for free.
    replays: int = 0
    #: Charges billed for calls whose data never arrived (also tracked
    #: market-wide in ``ledger.wasted_on_failures``).
    wasted_transactions: int = 0
    wasted_price: float = 0.0
    #: Regions that could not be bought (non-empty only under
    #: ``partial_results``; otherwise the query raises instead).
    failed_fetches: tuple[FailedFetch, ...] = ()

    @property
    def fetched_records(self) -> int:
        return self.records

    @property
    def failed_calls(self) -> int:
        return len(self.failed_fetches)

    @property
    def complete(self) -> bool:
        """Whether every region the plan needed was actually bought."""
        return not self.failed_fetches


#: QueryResult attributes that now live on ``result.stats``.
_FORWARDED_STATS = (
    "transactions",
    "price",
    "calls",
    "fetched_records",
    "evaluated_plans",
    "enumerated_boxes",
    "kept_boxes",
    "market_time_ms",
    "market_time_critical_path_ms",
    "retries",
    "faults_injected",
    "replays",
    "wasted_transactions",
    "wasted_price",
    "failed_fetches",
    "complete",
)


@dataclass
class QueryResult:
    """What a user query returns: rows, the chosen plan, and its stats.

    The per-query statistics live in ``result.stats`` (a
    :class:`QueryStats`); the historical flat attributes
    (``result.transactions`` etc.) survive as deprecated forwarding
    properties.
    """

    relation: Relation
    plan: PlanNode
    stats: QueryStats = field(default_factory=QueryStats)

    @property
    def rows(self) -> list[tuple]:
        return self.relation.rows

    @property
    def columns(self) -> list[str]:
        return [column for __, column in self.relation.layout.columns]


def _forwarding_property(name: str) -> property:
    def getter(self: QueryResult):
        warnings.warn(
            f"QueryResult.{name} is deprecated; read result.stats.{name}",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(self.stats, name)

    getter.__name__ = name
    getter.__doc__ = f"Deprecated: use ``result.stats.{name}``."
    return property(getter)


for _name in _FORWARDED_STATS:
    setattr(QueryResult, _name, _forwarding_property(_name))
del _name


class PayLess:
    """A buyer-side installation of the PayLess system."""

    def __init__(
        self,
        market: DataMarket,
        local_db: Database | None = None,
        consistency: ConsistencyPolicy | None = None,
        options: OptimizerOptions | None = None,
        prune_bounding_boxes: bool = True,
        statistic: str = "isomer",
        max_concurrent_calls: int | None = None,
        transport: TransportConfig | None = None,
    ):
        self.market = market
        self.options = options or OptimizerOptions()
        #: The money-safe transport configuration (retries, backoff,
        #: circuit breakers, fault injection, partial results).
        self.transport_config = transport or TransportConfig()
        #: Which updatable statistic drives estimation ("isomer",
        #: "independence", or "uniform"; see repro.stats.interface).
        self.statistic = statistic
        self.local_db = local_db or Database()
        self.store = SemanticStore(consistency)
        self.catalog = Catalog()
        self.rewriter = SemanticRewriter(
            self.store,
            self.catalog,
            enabled=self.options.use_sqr,
            prune=prune_bounding_boxes,
        )
        self.context = PlanningContext(
            market=self.market,
            catalog=self.catalog,
            store=self.store,
            rewriter=self.rewriter,
            local_db=self.local_db,
            max_concurrent_calls=max_concurrent_calls,
            transport=self.transport_config,
        )
        for table in self.local_db:
            self.context.register_local(table)
        self.total_transactions = 0
        self.total_price = 0.0
        self.total_calls = 0
        self.queries_executed = 0
        #: Per-query history (most recent last); see :class:`QueryLogEntry`.
        self.history: list[QueryLogEntry] = []

    # -- configuration shortcuts -------------------------------------------------

    @classmethod
    def full(cls, market: DataMarket, **kwargs: Any) -> "PayLess":
        """The complete system: SQR + all search-space theorems."""
        return cls(market, options=OptimizerOptions(), **kwargs)

    @classmethod
    def without_sqr(cls, market: DataMarket, **kwargs: Any) -> "PayLess":
        """The "PayLess w/o SQR" arm of Figure 10."""
        return cls(market, options=OptimizerOptions(use_sqr=False), **kwargs)

    @classmethod
    def minimizing_calls(cls, market: DataMarket, **kwargs: Any) -> "PayLess":
        """The Minimizing-Calls competitor of Figure 10."""
        return cls(
            market,
            options=OptimizerOptions(use_sqr=False, objective="calls"),
            **kwargs,
        )

    # -- registration ---------------------------------------------------------------

    def register_dataset(self, name: str) -> None:
        """Register with the market for ``name`` and ingest its basic stats."""
        dataset = self.market.dataset(name)
        for market_table in dataset:
            statistics = market_table.basic_statistics()
            space = BoxSpace.from_table(
                market_table.name,
                market_table.schema,
                market_table.pattern,
                statistics,
            )
            self.catalog.register(
                market_table.name,
                market_table.schema,
                space,
                statistics,
                statistic=self.statistic,
            )
            self.store.register_table(space, market_table.schema)
            self.context.register_market_table(
                dataset.name, market_table.name, market_table.schema
            )

    def add_local_table(self, table: Table) -> None:
        """Add a buyer-side table usable in queries alongside market data."""
        self.local_db.add(table)
        self.context.register_local(table)

    # -- querying ---------------------------------------------------------------------

    def compile(self, sql: str, params: Sequence[Any] = ()) -> LogicalQuery:
        """Parse + analyze ``sql`` against registered tables."""
        return compile_sql(sql, self.context, params)

    def explain(self, sql: str, params: Sequence[Any] = ()) -> PlanningResult:
        """Optimize without executing; the plan's ``describe()`` is printable."""
        query = self.compile(sql, params)
        return Optimizer(self.context, self.options).optimize(query)

    def query(self, sql: str, params: Sequence[Any] = ()) -> QueryResult:
        """Optimize and execute ``sql``, paying as little as possible."""
        logical = self.compile(sql, params)
        return self.execute_logical(logical)

    def execute_logical(self, logical: LogicalQuery) -> QueryResult:
        """Run an already-compiled query (the benchmark harness fast path)."""
        planning = Optimizer(self.context, self.options).optimize(logical)
        execution = Executor(self.context).execute(logical, planning.plan)
        self.total_transactions += execution.transactions
        self.total_price += execution.price
        self.total_calls += execution.calls
        self.queries_executed += 1
        from repro.core.plans import JoinNode

        def _has_bind(node) -> bool:
            if isinstance(node, JoinNode):
                return node.bind or _has_bind(node.left) or _has_bind(node.right)
            return False

        self.history.append(
            QueryLogEntry(
                sequence=self.queries_executed,
                sql_tables=tuple(logical.tables),
                transactions=execution.transactions,
                calls=execution.calls,
                evaluated_plans=planning.evaluated_plans,
                used_bind_join=_has_bind(planning.plan),
            )
        )
        return QueryResult(
            relation=execution.relation,
            plan=planning.plan,
            stats=QueryStats(
                transactions=execution.transactions,
                price=execution.price,
                calls=execution.calls,
                records=execution.fetched_records,
                evaluated_plans=planning.evaluated_plans,
                enumerated_boxes=planning.enumerated_boxes,
                kept_boxes=planning.kept_boxes,
                market_time_ms=execution.market_time_ms,
                market_time_critical_path_ms=(
                    execution.market_time_critical_path_ms
                ),
                retries=execution.retries,
                faults_injected=execution.faults_injected,
                replays=execution.replays,
                wasted_transactions=execution.wasted_transactions,
                wasted_price=execution.wasted_price,
                failed_fetches=execution.failed_fetches,
            ),
        )

    def query_batch(
        self, batch: Sequence[tuple[str, Sequence[Any]]]
    ) -> "BatchResult":
        """Multi-query optimization: execute a batch in a cost-aware order.

        The paper's conclusion sketches this as future work; see
        :mod:`repro.core.batch` for the ordering heuristic.  Results come
        back in submission order.
        """
        from repro.core.batch import execute_batch

        return execute_batch(self, batch)

    # -- the Download-All comparison ------------------------------------------------

    def download_all_strategy(self) -> DownloadAllStrategy:
        """A Download-All baseline sharing this instance's registrations."""
        return DownloadAllStrategy(self.context)

    # -- reporting -------------------------------------------------------------------

    def bill(self) -> str:
        return (
            f"{self.queries_executed} queries, {self.total_calls} calls, "
            f"{self.total_transactions} transactions, ${self.total_price:g}"
        )
