"""Prepared (parameterized) queries.

The paper's usage model (Section 2.2): "We expect SQL queries to PayLess
are parameterized queries embedded in certain application so that users
(e.g., data scientists) issue the queries by specifying the parameter
values via a web interface."  A :class:`PreparedQuery` is that template:
parsed once, analyzed and optimized per execution (the optimum depends on
the parameter values *and* on what the store already holds).

Executions route through the installation's plan cache
(:mod:`repro.core.plancache`): a repeat binding at unchanged store epochs
reuses the cached plan instead of re-analyzing and re-planning, and any
purchase into a referenced table invalidates the entry — so "optimized
per execution" still holds whenever re-planning could change the answer.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.objectives import PlanObjective, ServiceTier
from repro.core.payless import PayLess, QueryResult
from repro.errors import SqlAnalysisError
from repro.sqlparser.ast import SelectStatement


class PreparedQuery:
    """A parsed SQL template awaiting parameter values.

    ``objective`` (at construction or per ``execute``/``explain`` call)
    plans the template under that objective or service tier; the plan
    cache keeps per-objective entries, so one template alternating
    between tiers never serves one tier's plan to the other.
    """

    def __init__(
        self,
        payless: PayLess,
        sql: str,
        objective: PlanObjective | ServiceTier | str | None = None,
    ):
        self.payless = payless
        self.sql = sql
        self.objective = objective
        self._statement: SelectStatement = payless.plan_cache.parse_sql(sql)
        self.executions = 0
        self.total_transactions = 0

    @property
    def parameter_count(self) -> int:
        return self._statement.parameter_count

    def execute(
        self,
        params: Sequence[Any] = (),
        objective: PlanObjective | ServiceTier | str | None = None,
    ) -> QueryResult:
        """Bind ``params`` and run the template."""
        if len(params) != self.parameter_count:
            raise SqlAnalysisError(
                f"template has {self.parameter_count} parameters, "
                f"{len(params)} values given"
            )
        result = self.payless.execute_statement(
            self._statement,
            params,
            objective if objective is not None else self.objective,
        )
        self.executions += 1
        self.total_transactions += result.stats.transactions
        return result

    def explain(
        self,
        params: Sequence[Any] = (),
        objective: PlanObjective | ServiceTier | str | None = None,
    ):
        """Optimize (without executing) for one parameter binding."""
        return self.payless._plan_statement(
            self._statement,
            params,
            objective if objective is not None else self.objective,
        )[0]

    def __repr__(self) -> str:
        return (
            f"PreparedQuery({self.parameter_count} params, "
            f"{self.executions} runs, {self.total_transactions} trans.)"
        )
