"""Recursive-descent parser for the PayLess SQL subset.

Grammar (roughly)::

    select    := SELECT [DISTINCT] items FROM tables [WHERE cond]
                 [GROUP BY cols] [ORDER BY order_items] [LIMIT n]
    items     := '*' | item (',' item)*
    item      := column [AS ident] | func '(' (column | '*') ')' [AS ident]
    cond      := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := unary (AND unary)*
    unary     := NOT unary | '(' cond ')' | predicate
    predicate := term (op term)+            -- chains of '=' are kept chained
               | column BETWEEN term AND term
               | column IN '(' term (',' term)* ')'
    term      := column | literal | '?'

Chained equality (``a = b = ?``) is first-class because the paper's query
templates (Table 1) are written that way.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SqlSyntaxError
from repro.sqlparser.ast import (
    AggregateTerm,
    AndExpr,
    ArithExpr,
    BetweenExpr,
    ChainedEquality,
    Column,
    ComparisonExpr,
    Condition,
    InExpr,
    NotExpr,
    OrExpr,
    OrderItem,
    Parameter,
    SelectItem,
    SelectStatement,
    TableRef,
    Term,
)
from repro.sqlparser.lexer import tokenize
from repro.sqlparser.tokens import Token, TokenType

_AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")


class _Parser:
    def __init__(self, sql: str):
        self._tokens = tokenize(sql)
        self._position = 0
        self._parameter_count = 0
        self._in_having = False

    # -- token plumbing -----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._current
        self._position += 1
        return token

    def _expect(self, token_type: TokenType, value: Any = None) -> Token:
        token = self._current
        if token.type is not token_type or (value is not None and token.value != value):
            wanted = value if value is not None else token_type.value
            raise SqlSyntaxError(
                f"expected {wanted}, found {token.value!r}", token.position
            )
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self._current.matches_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise SqlSyntaxError(
                f"expected {word}, found {self._current.value!r}",
                self._current.position,
            )

    # -- grammar ------------------------------------------------------------

    def parse(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        items = self._select_items()
        self._expect_keyword("FROM")
        tables, join_conditions = self._from_clause()

        where = None
        if self._accept_keyword("WHERE"):
            where = self._condition()
        # Explicit JOIN ... ON conditions are sugar: fold them into WHERE.
        if join_conditions:
            operands = tuple(join_conditions) + (
                (where,) if where is not None else ()
            )
            where = operands[0] if len(operands) == 1 else AndExpr(operands)

        group_by: list[Column] = []
        having = None
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = self._column_list()
            if self._accept_keyword("HAVING"):
                self._in_having = True
                having = self._condition()
                self._in_having = False

        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._order_items()

        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._expect(TokenType.NUMBER)
            if not isinstance(token.value, int) or token.value < 0:
                raise SqlSyntaxError("LIMIT must be a non-negative integer",
                                     token.position)
            limit = token.value

        if self._current.type is not TokenType.EOF:
            raise SqlSyntaxError(
                f"unexpected trailing input {self._current.value!r}",
                self._current.position,
            )
        return SelectStatement(
            items=items,
            tables=tables,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            distinct=distinct,
            limit=limit,
            parameter_count=self._parameter_count,
        )

    def _select_items(self) -> list[SelectItem]:
        if self._current.type is TokenType.STAR:
            self._advance()
            return []
        items = [self._select_item()]
        while self._current.type is TokenType.COMMA:
            self._advance()
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        token = self._current
        if token.type is TokenType.KEYWORD and token.value in _AGGREGATES:
            func, arg = self._aggregate_call()
            alias = self._alias()
            return SelectItem(aggregate_func=func, aggregate_arg=arg, alias=alias)
        column = self._column()
        alias = self._alias()
        return SelectItem(column=column, alias=alias)

    def _aggregate_call(self):
        """``FUNC ( * | scalar_expression )`` — shared by SELECT and HAVING."""
        token = self._current
        func = self._advance().value
        self._expect(TokenType.LPAREN)
        if self._current.type is TokenType.STAR and self._peek_is_rparen():
            self._advance()
            arg = None
            if func != "COUNT":
                raise SqlSyntaxError(f"{func}(*) is not valid", token.position)
        else:
            arg = self._scalar_expression()
        self._expect(TokenType.RPAREN)
        return func, arg

    def _peek_is_rparen(self) -> bool:
        return self._tokens[self._position + 1].type is TokenType.RPAREN

    # -- scalar arithmetic (aggregate arguments) ------------------------------

    def _scalar_expression(self):
        expression = self._scalar_term()
        while self._current.type in (TokenType.PLUS, TokenType.MINUS):
            op = "+" if self._current.type is TokenType.PLUS else "-"
            self._advance()
            expression = ArithExpr(op, expression, self._scalar_term())
        return expression

    def _scalar_term(self):
        expression = self._scalar_atom()
        while self._current.type in (TokenType.STAR, TokenType.SLASH):
            op = "*" if self._current.type is TokenType.STAR else "/"
            self._advance()
            expression = ArithExpr(op, expression, self._scalar_atom())
        return expression

    def _scalar_atom(self):
        token = self._current
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self._scalar_expression()
            self._expect(TokenType.RPAREN)
            return inner
        if token.type is TokenType.NUMBER:
            self._advance()
            return token.value
        if token.type is TokenType.PARAMETER:
            self._advance()
            parameter = Parameter(self._parameter_count)
            self._parameter_count += 1
            return parameter
        if token.type is TokenType.MINUS:
            self._advance()
            inner = self._scalar_atom()
            return ArithExpr("-", 0, inner)
        if token.type is TokenType.IDENTIFIER:
            return self._column()
        raise SqlSyntaxError(
            f"expected a scalar expression, found {token.value!r}",
            token.position,
        )

    def _alias(self) -> str | None:
        if self._accept_keyword("AS"):
            return self._expect(TokenType.IDENTIFIER).value
        if self._current.type is TokenType.IDENTIFIER:
            return self._advance().value
        return None

    def _from_clause(self) -> tuple[list[TableRef], list[Condition]]:
        """FROM with both comma-joins and explicit ``[INNER] JOIN ... ON``.

        The ON conditions are returned separately and folded into WHERE —
        in this SQL subset every join is an inner equi-join either way.
        """
        tables = [self._table_ref()]
        join_conditions: list[Condition] = []
        while True:
            if self._current.type is TokenType.COMMA:
                self._advance()
                tables.append(self._table_ref())
                continue
            if self._current.matches_keyword("INNER") or \
                    self._current.matches_keyword("JOIN"):
                self._accept_keyword("INNER")
                self._expect_keyword("JOIN")
                tables.append(self._table_ref())
                self._expect_keyword("ON")
                join_conditions.append(self._unary())
                while self._accept_keyword("AND"):
                    join_conditions.append(self._unary())
                continue
            return tables, join_conditions

    def _table_ref(self) -> TableRef:
        name = self._expect(TokenType.IDENTIFIER).value
        alias = None
        if self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return TableRef(name=name, alias=alias)

    def _column_list(self) -> list[Column]:
        columns = [self._column()]
        while self._current.type is TokenType.COMMA:
            self._advance()
            columns.append(self._column())
        return columns

    def _order_items(self) -> list[OrderItem]:
        items = [self._order_item()]
        while self._current.type is TokenType.COMMA:
            self._advance()
            items.append(self._order_item())
        return items

    def _order_item(self) -> OrderItem:
        column = self._column()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return OrderItem(column=column, descending=descending)

    def _column(self) -> Column:
        first = self._expect(TokenType.IDENTIFIER).value
        if self._current.type is TokenType.DOT:
            self._advance()
            second = self._expect(TokenType.IDENTIFIER).value
            return Column(table=first, name=second)
        return Column(table=None, name=first)

    # -- conditions ----------------------------------------------------------

    def _condition(self) -> Condition:
        return self._or_expr()

    def _or_expr(self) -> Condition:
        operands = [self._and_expr()]
        while self._accept_keyword("OR"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return OrExpr(tuple(operands))

    def _and_expr(self) -> Condition:
        operands = [self._unary()]
        while self._accept_keyword("AND"):
            operands.append(self._unary())
        if len(operands) == 1:
            return operands[0]
        return AndExpr(tuple(operands))

    def _unary(self) -> Condition:
        if self._accept_keyword("NOT"):
            return NotExpr(self._unary())
        if self._current.type is TokenType.LPAREN:
            self._advance()
            inner = self._condition()
            self._expect(TokenType.RPAREN)
            return inner
        return self._predicate()

    def _scalar_continue(self, first):
        """Continue scalar parsing when an already-read term is followed by
        arithmetic (``a * b + c ...``), honouring precedence."""
        expression = first
        while self._current.type in (TokenType.STAR, TokenType.SLASH):
            op = "*" if self._current.type is TokenType.STAR else "/"
            self._advance()
            expression = ArithExpr(op, expression, self._scalar_atom())
        while self._current.type in (TokenType.PLUS, TokenType.MINUS):
            op = "+" if self._current.type is TokenType.PLUS else "-"
            self._advance()
            expression = ArithExpr(op, expression, self._scalar_term())
        return expression

    def _predicate_operand(self) -> Term:
        """A predicate side: a plain term, possibly extended arithmetically."""
        term = self._term()
        if self._current.type in (
            TokenType.PLUS,
            TokenType.MINUS,
            TokenType.STAR,
            TokenType.SLASH,
        ):
            return self._scalar_continue(term)
        return term

    def _predicate(self) -> Condition:
        left = self._predicate_operand()
        token = self._current
        if token.matches_keyword("BETWEEN"):
            if not isinstance(left, Column):
                raise SqlSyntaxError("BETWEEN needs a column on its left",
                                     token.position)
            self._advance()
            low = self._term()
            self._expect_keyword("AND")
            high = self._term()
            return BetweenExpr(column=left, low=low, high=high)
        if token.matches_keyword("IN"):
            if not isinstance(left, Column):
                raise SqlSyntaxError("IN needs a column on its left", token.position)
            self._advance()
            self._expect(TokenType.LPAREN)
            values = [self._term()]
            while self._current.type is TokenType.COMMA:
                self._advance()
                values.append(self._term())
            self._expect(TokenType.RPAREN)
            return InExpr(column=left, values=tuple(values))
        if token.type is not TokenType.OPERATOR:
            raise SqlSyntaxError(
                f"expected a comparison operator, found {token.value!r}",
                token.position,
            )
        op = self._advance().value
        right = self._predicate_operand()
        if op == "=" and self._current.type is TokenType.OPERATOR \
                and self._current.value == "=":
            terms: list[Term] = [left, right]
            while self._current.type is TokenType.OPERATOR \
                    and self._current.value == "=":
                self._advance()
                terms.append(self._term())
            return ChainedEquality(tuple(terms))
        return ComparisonExpr(op=op, left=left, right=right)

    def _term(self) -> Term:
        token = self._current
        if (
            self._in_having
            and token.type is TokenType.KEYWORD
            and token.value in _AGGREGATES
        ):
            func, arg = self._aggregate_call()
            return AggregateTerm(func=func, arg=arg)
        if token.type is TokenType.IDENTIFIER:
            return self._column()
        if token.type is TokenType.NUMBER:
            self._advance()
            return token.value
        if token.type is TokenType.STRING:
            self._advance()
            return token.value
        if token.type is TokenType.PARAMETER:
            self._advance()
            parameter = Parameter(self._parameter_count)
            self._parameter_count += 1
            return parameter
        raise SqlSyntaxError(f"expected a value, found {token.value!r}",
                             token.position)


def parse(sql: str) -> SelectStatement:
    """Parse ``sql`` into a :class:`SelectStatement` parse tree."""
    return _Parser(sql).parse()
