"""Semantic analysis: parse tree + parameters + schemas → LogicalQuery.

The analyzer resolves table aliases and unqualified columns against the
schemas of the referenced tables, substitutes ``?`` parameter values, and
normalizes the WHERE clause:

* conjuncts of the top-level AND are classified as join predicates
  (column = column), pushable per-table constraints (point / integer range /
  point set), or residual local predicates;
* chained equalities (``Station.Country = Weather.Country = ?``) expand to
  a join predicate plus a point constraint on every chained column;
* ``x = a OR x = b`` (same column, constants) becomes a point-set
  constraint, the paper's decomposable-disjunction case; any other OR is
  rejected, matching the data-market interface's lack of disjunction.
"""

from __future__ import annotations

from typing import Any, Protocol, Sequence

from repro.errors import SqlAnalysisError
from repro.relational.expressions import (
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Literal,
    Not,
)
from repro.relational.operators import Aggregate
from repro.relational.query import (
    AttributeConstraint,
    JoinPredicate,
    LogicalQuery,
    OutputColumn,
)
from repro.relational.schema import Schema
from repro.relational.types import AttributeType
from repro.sqlparser import ast
from repro.sqlparser.parser import parse

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


class SchemaProvider(Protocol):
    """Anything that can resolve a table name to its schema."""

    def has_table(self, name: str) -> bool: ...

    def schema_of(self, name: str) -> Schema: ...


class _Scope:
    """Table bindings of one query: alias → (real name, schema)."""

    def __init__(self, tables: Sequence[ast.TableRef], provider: SchemaProvider):
        self._bindings: dict[str, tuple[str, Schema]] = {}
        self.table_names: list[str] = []
        for ref in tables:
            if not provider.has_table(ref.name):
                raise SqlAnalysisError(f"unknown table {ref.name!r}")
            schema = provider.schema_of(ref.name)
            key = ref.binding_name.lower()
            if key in self._bindings:
                raise SqlAnalysisError(
                    f"duplicate table binding {ref.binding_name!r} "
                    "(self-joins are not supported)"
                )
            self._bindings[key] = (ref.name, schema)
            self.table_names.append(ref.name)
        # Also allow referring to a table by its real name when aliased.
        for ref in tables:
            key = ref.name.lower()
            if ref.alias is not None and key not in self._bindings:
                self._bindings[key] = (ref.name, provider.schema_of(ref.name))

    def resolve(self, column: ast.Column) -> ColumnRef:
        """Resolve a source column to a fully-qualified :class:`ColumnRef`."""
        if column.table is not None:
            key = column.table.lower()
            if key not in self._bindings:
                raise SqlAnalysisError(f"unknown table {column.table!r}")
            name, schema = self._bindings[key]
            if column.name not in schema:
                raise SqlAnalysisError(f"unknown column {column.table}.{column.name}")
            return ColumnRef(name, schema.attribute(column.name).name)
        matches = [
            (name, schema)
            for name, schema in self._bindings.values()
            if column.name in schema
        ]
        # Dedupe (alias + real-name entries may both match the same table).
        unique = {name.lower(): (name, schema) for name, schema in matches}
        if not unique:
            raise SqlAnalysisError(f"unknown column {column.name!r}")
        if len(unique) > 1:
            raise SqlAnalysisError(f"ambiguous column {column.name!r}")
        name, schema = next(iter(unique.values()))
        return ColumnRef(name, schema.attribute(column.name).name)

    def attribute_type(self, ref: ColumnRef) -> AttributeType:
        __, schema = self._bindings[ref.table.lower()]
        return schema.attribute(ref.column).type


class _Analyzer:
    def __init__(
        self,
        statement: ast.SelectStatement,
        provider: SchemaProvider,
        params: Sequence[Any],
    ):
        if statement.parameter_count != len(params):
            raise SqlAnalysisError(
                f"query has {statement.parameter_count} parameters, "
                f"{len(params)} values given"
            )
        self._statement = statement
        self._scope = _Scope(statement.tables, provider)
        self._params = list(params)
        self._constraints: dict[str, list[AttributeConstraint]] = {}
        self._residuals: dict[str, list[Expression]] = {}
        self._joins: list[JoinPredicate] = []

    # -- helpers -------------------------------------------------------------

    def _value_of(self, term: ast.Term) -> Any:
        if isinstance(term, ast.Parameter):
            return self._params[term.index]
        if isinstance(term, ast.Column):
            raise SqlAnalysisError(f"expected a constant, found column {term!r}")
        return term

    def _is_constant(self, term: ast.Term) -> bool:
        return not isinstance(term, ast.Column)

    def _add_constraint(self, ref: ColumnRef, constraint: AttributeConstraint) -> None:
        self._constraints.setdefault(ref.table, []).append(constraint)

    def _add_residual(self, table: str, expression: Expression) -> None:
        self._residuals.setdefault(table, []).append(expression)

    def _single_table(self, refs: list[ColumnRef], context: str) -> str:
        tables = {ref.table.lower() for ref in refs}
        if len(tables) != 1:
            raise SqlAnalysisError(f"{context} must reference a single table")
        return refs[0].table

    # -- WHERE normalization ---------------------------------------------------

    def _walk_condition(self, condition: ast.Condition) -> None:
        if isinstance(condition, ast.AndExpr):
            for operand in condition.operands:
                self._walk_condition(operand)
            return
        if isinstance(condition, ast.OrExpr):
            self._handle_or(condition)
            return
        if isinstance(condition, ast.NotExpr):
            self._handle_not(condition)
            return
        if isinstance(condition, ast.ChainedEquality):
            self._handle_chain(condition)
            return
        if isinstance(condition, ast.BetweenExpr):
            self._handle_between(condition)
            return
        if isinstance(condition, ast.InExpr):
            self._handle_in(condition)
            return
        if isinstance(condition, ast.ComparisonExpr):
            self._handle_comparison(condition)
            return
        raise SqlAnalysisError(f"unsupported condition {condition!r}")

    def _handle_chain(self, chain: ast.ChainedEquality) -> None:
        columns = [t for t in chain.terms if isinstance(t, ast.Column)]
        constants = [t for t in chain.terms if not isinstance(t, ast.Column)]
        if len(constants) > 1:
            values = {self._value_of(c) for c in constants}
            if len(values) > 1:
                raise SqlAnalysisError("chained equality with conflicting constants")
        refs = [self._scope.resolve(column) for column in columns]
        if constants:
            value = self._value_of(constants[0])
            for ref in refs:
                self._add_constraint(
                    ref, AttributeConstraint(ref.column, value=value)
                )
        # Join every adjacent pair of distinct-table columns.
        for left, right in zip(refs, refs[1:]):
            if left.table.lower() == right.table.lower():
                continue
            self._joins.append(JoinPredicate(left, right))
        if not constants and len(refs) < 2:
            raise SqlAnalysisError("chained equality needs two or more terms")

    def _handle_arithmetic_comparison(
        self, comparison: ast.ComparisonExpr
    ) -> None:
        """``expr op expr`` with arithmetic on a side → residual filter.

        Arithmetic cannot be pushed into a market call, so the predicate is
        applied locally after retrieval; all referenced columns must belong
        to a single table.
        """
        left = self._resolve_scalar(comparison.left)
        right = self._resolve_scalar(comparison.right)
        expression = Comparison(comparison.op, left, right)
        tables = {ref.table.lower() for ref in expression.columns()}
        if not tables:
            raise SqlAnalysisError("comparison between two constants")
        if len(tables) > 1:
            raise SqlAnalysisError(
                "arithmetic predicates across tables are not supported"
            )
        table = expression.columns()[0].table
        self._add_residual(table, expression)

    def _handle_comparison(self, comparison: ast.ComparisonExpr) -> None:
        left, right, op = comparison.left, comparison.right, comparison.op
        if isinstance(left, ast.ArithExpr) or isinstance(right, ast.ArithExpr):
            self._handle_arithmetic_comparison(comparison)
            return
        left_is_column = isinstance(left, ast.Column)
        right_is_column = isinstance(right, ast.Column)
        if left_is_column and right_is_column:
            left_ref = self._scope.resolve(left)
            right_ref = self._scope.resolve(right)
            if left_ref.table.lower() == right_ref.table.lower():
                self._add_residual(
                    left_ref.table, Comparison(op, left_ref, right_ref)
                )
                return
            if op != "=":
                raise SqlAnalysisError(
                    "only equi-joins between tables are supported"
                )
            self._joins.append(JoinPredicate(left_ref, right_ref))
            return
        if not left_is_column and not right_is_column:
            raise SqlAnalysisError("comparison between two constants")
        if right_is_column:
            left, right = right, left
            op = _FLIPPED[op]
        ref = self._scope.resolve(left)
        value = self._value_of(right)
        self._classify_constant_comparison(ref, op, value)

    def _classify_constant_comparison(
        self, ref: ColumnRef, op: str, value: Any
    ) -> None:
        attribute_type = self._scope.attribute_type(ref)
        if op == "=":
            self._add_constraint(ref, AttributeConstraint(ref.column, value=value))
            return
        rangeable = attribute_type in (AttributeType.INT, AttributeType.DATE)
        if op == "!=" or not rangeable:
            # Not pushable to the market — keep as a local residual filter.
            self._add_residual(
                ref.table, Comparison(op, ref, Literal(value))
            )
            return
        value = int(value)
        if op == ">=":
            constraint = AttributeConstraint(ref.column, low=value)
        elif op == ">":
            constraint = AttributeConstraint(ref.column, low=value + 1)
        elif op == "<=":
            constraint = AttributeConstraint(ref.column, high=value + 1)
        else:  # "<"
            constraint = AttributeConstraint(ref.column, high=value)
        self._add_constraint(ref, constraint)

    def _handle_between(self, between: ast.BetweenExpr) -> None:
        ref = self._scope.resolve(between.column)
        low = self._value_of(between.low)
        high = self._value_of(between.high)
        attribute_type = self._scope.attribute_type(ref)
        if attribute_type in (AttributeType.INT, AttributeType.DATE):
            self._add_constraint(
                ref,
                AttributeConstraint(ref.column, low=int(low), high=int(high) + 1),
            )
            return
        self._add_residual(
            ref.table,
            Comparison(">=", ref, Literal(low)),
        )
        self._add_residual(
            ref.table,
            Comparison("<=", ref, Literal(high)),
        )

    def _handle_in(self, in_expr: ast.InExpr) -> None:
        ref = self._scope.resolve(in_expr.column)
        values = frozenset(self._value_of(term) for term in in_expr.values)
        self._add_constraint(ref, AttributeConstraint(ref.column, values=values))

    def _handle_or(self, or_expr: ast.OrExpr) -> None:
        """Accept only ``col = c1 OR col = c2 ...`` on a single column."""
        values: set[Any] = set()
        ref: ColumnRef | None = None
        for operand in or_expr.operands:
            if (
                not isinstance(operand, ast.ComparisonExpr)
                or operand.op != "="
            ):
                raise SqlAnalysisError(
                    "only same-column equality disjunctions are supported "
                    "(the data market cannot express general OR)"
                )
            left, right = operand.left, operand.right
            if isinstance(right, ast.Column) and not isinstance(left, ast.Column):
                left, right = right, left
            if not isinstance(left, ast.Column) or isinstance(right, ast.Column):
                raise SqlAnalysisError(
                    "OR operands must compare a column with a constant"
                )
            resolved = self._scope.resolve(left)
            if ref is None:
                ref = resolved
            elif (ref.table.lower(), ref.column.lower()) != (
                resolved.table.lower(),
                resolved.column.lower(),
            ):
                raise SqlAnalysisError(
                    "OR across different columns is not supported"
                )
            values.add(self._value_of(right))
        assert ref is not None
        self._add_constraint(
            ref, AttributeConstraint(ref.column, values=frozenset(values))
        )

    def _handle_not(self, not_expr: ast.NotExpr) -> None:
        """NOT over a single-table predicate becomes a residual filter."""
        inner = not_expr.operand
        if isinstance(inner, ast.ComparisonExpr):
            left, right, op = inner.left, inner.right, inner.op
            if isinstance(left, ast.Column) and not isinstance(right, ast.Column):
                ref = self._scope.resolve(left)
                self._add_residual(
                    ref.table,
                    Not(Comparison(op, ref, Literal(self._value_of(right)))),
                )
                return
        if isinstance(inner, ast.InExpr):
            ref = self._scope.resolve(inner.column)
            values = frozenset(self._value_of(t) for t in inner.values)
            self._add_residual(ref.table, Not(InList(ref, values)))
            return
        raise SqlAnalysisError("unsupported NOT expression")

    # -- outputs ----------------------------------------------------------------

    def _resolve_scalar(self, expr: ast.ScalarExpr) -> Expression:
        """Resolve a scalar expression (aggregate argument or predicate side)."""
        if isinstance(expr, ast.Column):
            return self._scope.resolve(expr)
        if isinstance(expr, ast.ArithExpr):
            from repro.relational.expressions import Arithmetic

            return Arithmetic(
                expr.op,
                self._resolve_scalar(expr.left),
                self._resolve_scalar(expr.right),
            )
        # A constant or a ? parameter.
        return Literal(self._value_of(expr))

    def _analyze_outputs(self) -> list[OutputColumn]:
        outputs: list[OutputColumn] = []
        for index, item in enumerate(self._statement.items):
            if item.aggregate_func is not None:
                arg_expression = None
                if item.aggregate_arg is not None:
                    arg_expression = self._resolve_scalar(item.aggregate_arg)
                alias = item.alias or self._default_alias(item, index)
                outputs.append(
                    OutputColumn(
                        aggregate=Aggregate(
                            item.aggregate_func, arg_expression, alias
                        )
                    )
                )
            else:
                outputs.append(OutputColumn(column=self._scope.resolve(item.column)))
        return outputs

    @staticmethod
    def _default_alias(item: ast.SelectItem, index: int) -> str:
        if item.aggregate_arg is None:
            return f"{item.aggregate_func.lower()}_all"
        if isinstance(item.aggregate_arg, ast.Column):
            return (
                f"{item.aggregate_func.lower()}_"
                f"{item.aggregate_arg.name.lower()}"
            )
        # Arithmetic argument: index-based alias keeps the layout unambiguous.
        return f"{item.aggregate_func.lower()}_expr{index}"

    # -- HAVING -------------------------------------------------------------------

    def _having_term(
        self, term: ast.Term, outputs: list[OutputColumn]
    ) -> Expression:
        if isinstance(term, ast.AggregateTerm):
            arg_expression = (
                self._resolve_scalar(term.arg) if term.arg is not None else None
            )
            for output in outputs:
                aggregate = output.aggregate
                if aggregate is None or aggregate.func != term.func:
                    continue
                if aggregate.arg is None and arg_expression is None:
                    return ColumnRef(None, aggregate.alias)
                if (
                    aggregate.arg is not None
                    and arg_expression is not None
                    and repr(aggregate.arg) == repr(arg_expression)
                ):
                    return ColumnRef(None, aggregate.alias)
            raise SqlAnalysisError(
                "HAVING aggregates must also appear in the SELECT list"
            )
        if isinstance(term, ast.Column):
            return self._scope.resolve(term)
        return Literal(self._value_of(term))

    def _analyze_having(
        self, condition: ast.Condition, outputs: list[OutputColumn]
    ) -> Expression:
        from repro.relational.expressions import And, Or

        if isinstance(condition, ast.AndExpr):
            return And(
                tuple(
                    self._analyze_having(op, outputs)
                    for op in condition.operands
                )
            )
        if isinstance(condition, ast.OrExpr):
            return Or(
                tuple(
                    self._analyze_having(op, outputs)
                    for op in condition.operands
                )
            )
        if isinstance(condition, ast.NotExpr):
            return Not(self._analyze_having(condition.operand, outputs))
        if isinstance(condition, ast.ComparisonExpr):
            return Comparison(
                condition.op,
                self._having_term(condition.left, outputs),
                self._having_term(condition.right, outputs),
            )
        if isinstance(condition, ast.BetweenExpr):
            raise SqlAnalysisError("BETWEEN is not supported in HAVING")
        raise SqlAnalysisError("unsupported HAVING condition")

    # -- entry point --------------------------------------------------------------

    def analyze(self) -> LogicalQuery:
        if self._statement.where is not None:
            self._walk_condition(self._statement.where)
        outputs = self._analyze_outputs()
        group_by = [self._scope.resolve(c) for c in self._statement.group_by]
        having = None
        if self._statement.having is not None:
            if not any(o.aggregate for o in outputs):
                raise SqlAnalysisError("HAVING requires an aggregated query")
            having = self._analyze_having(self._statement.having, outputs)
        order_by = [self._scope.resolve(i.column) for i in self._statement.order_by]
        descending = [i.descending for i in self._statement.order_by]
        if group_by and not any(o.aggregate for o in outputs):
            # SELECT col ... GROUP BY col with no aggregate — allowed, acts
            # like DISTINCT on the group keys.
            pass
        return LogicalQuery(
            tables=self._scope.table_names,
            constraints=self._constraints,
            residuals=self._residuals,
            joins=self._joins,
            outputs=outputs,
            group_by=group_by,
            having=having,
            order_by=order_by,
            order_descending=descending,
            select_distinct=self._statement.distinct,
            limit=self._statement.limit,
        )


def analyze(
    statement: ast.SelectStatement,
    provider: SchemaProvider,
    params: Sequence[Any] = (),
) -> LogicalQuery:
    """Lower a parse tree to a :class:`LogicalQuery`."""
    return _Analyzer(statement, provider, params).analyze()


def compile_sql(
    sql: str, provider: SchemaProvider, params: Sequence[Any] = ()
) -> LogicalQuery:
    """Parse and analyze ``sql`` in one step."""
    return analyze(parse(sql), provider, params)
