"""A hand-rolled SQL tokenizer.

Handles identifiers (optionally ``table.column`` qualified — the dot is a
separate token), integer/float literals, single-quoted strings with ``''``
escaping, comparison operators, parentheses, commas, ``*``, ``?`` parameter
placeholders, and ``--`` line comments.
"""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.sqlparser.tokens import KEYWORDS, Token, TokenType

_OPERATOR_STARTS = "<>=!"


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` into a list ending with an EOF token."""
    tokens: list[Token] = []
    index = 0
    length = len(sql)
    while index < length:
        char = sql[index]
        if char.isspace():
            index += 1
            continue
        if sql.startswith("--", index):
            newline = sql.find("\n", index)
            index = length if newline == -1 else newline + 1
            continue
        if char == "'":
            index = _lex_string(sql, index, tokens)
            continue
        if char.isdigit() or (
            char == "-"
            and index + 1 < length
            and sql[index + 1].isdigit()
            and _negative_allowed(tokens)
        ):
            index = _lex_number(sql, index, tokens)
            continue
        if char.isalpha() or char == "_":
            index = _lex_word(sql, index, tokens)
            continue
        if char in _OPERATOR_STARTS:
            index = _lex_operator(sql, index, tokens)
            continue
        simple = {
            ",": TokenType.COMMA,
            ".": TokenType.DOT,
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
            "*": TokenType.STAR,
            "+": TokenType.PLUS,
            "-": TokenType.MINUS,
            "/": TokenType.SLASH,
            "?": TokenType.PARAMETER,
        }.get(char)
        if simple is None:
            raise SqlSyntaxError(f"unexpected character {char!r}", index)
        tokens.append(Token(simple, char, index))
        index += 1
    tokens.append(Token(TokenType.EOF, None, length))
    return tokens


def _negative_allowed(tokens: list[Token]) -> bool:
    """A ``-`` starts a negative literal only after an operator/keyword/(/,."""
    if not tokens:
        return True
    return tokens[-1].type in (
        TokenType.OPERATOR,
        TokenType.KEYWORD,
        TokenType.LPAREN,
        TokenType.COMMA,
    )


def _lex_string(sql: str, start: int, tokens: list[Token]) -> int:
    index = start + 1
    pieces: list[str] = []
    while index < len(sql):
        char = sql[index]
        if char == "'":
            if sql.startswith("''", index):
                pieces.append("'")
                index += 2
                continue
            tokens.append(Token(TokenType.STRING, "".join(pieces), start))
            return index + 1
        pieces.append(char)
        index += 1
    raise SqlSyntaxError("unterminated string literal", start)


def _lex_number(sql: str, start: int, tokens: list[Token]) -> int:
    index = start
    if sql[index] == "-":
        index += 1
    while index < len(sql) and sql[index].isdigit():
        index += 1
    is_float = False
    if (
        index < len(sql)
        and sql[index] == "."
        and index + 1 < len(sql)
        and sql[index + 1].isdigit()
    ):
        is_float = True
        index += 1
        while index < len(sql) and sql[index].isdigit():
            index += 1
    text = sql[start:index]
    value = float(text) if is_float else int(text)
    tokens.append(Token(TokenType.NUMBER, value, start))
    return index


def _lex_word(sql: str, start: int, tokens: list[Token]) -> int:
    index = start
    while index < len(sql) and (sql[index].isalnum() or sql[index] == "_"):
        index += 1
    word = sql[start:index]
    upper = word.upper()
    if upper in KEYWORDS:
        tokens.append(Token(TokenType.KEYWORD, upper, start))
    else:
        tokens.append(Token(TokenType.IDENTIFIER, word, start))
    return index


def _lex_operator(sql: str, start: int, tokens: list[Token]) -> int:
    two = sql[start : start + 2]
    if two in ("<=", ">=", "!=", "<>"):
        value = "!=" if two == "<>" else two
        tokens.append(Token(TokenType.OPERATOR, value, start))
        return start + 2
    one = sql[start]
    if one in ("<", ">", "="):
        tokens.append(Token(TokenType.OPERATOR, one, start))
        return start + 1
    raise SqlSyntaxError(f"unexpected character {one!r}", start)
