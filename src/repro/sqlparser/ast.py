"""Raw parse-tree nodes for the SQL subset PayLess accepts.

These nodes mirror the surface syntax (they still contain ``?`` parameter
markers and chained equalities); the analyzer lowers them to the
:class:`~repro.relational.query.LogicalQuery` IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Parameter:
    """A ``?`` placeholder; ``index`` is its zero-based occurrence order."""

    index: int


@dataclass(frozen=True)
class Column:
    """A possibly-qualified column reference in the source text."""

    table: str | None
    name: str

    def __repr__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class ArithExpr:
    """Scalar arithmetic: ``left <op> right`` with op in + - * /."""

    op: str
    left: "ScalarExpr"
    right: "ScalarExpr"


#: A scalar expression usable as an aggregate argument: a column, a numeric
#: constant, or arithmetic over them (``ExtendedPrice * Discount``).
ScalarExpr = Column | ArithExpr | int | float


@dataclass(frozen=True)
class AggregateTerm:
    """An aggregate call used as a scalar term (only valid in HAVING)."""

    func: str
    arg: "ScalarExpr | None"  # None means COUNT(*)


#: A scalar term in a predicate: a column, a literal constant, a parameter,
#: or (in HAVING only) an aggregate call.
Term = Column | Parameter | AggregateTerm | Any


@dataclass(frozen=True)
class ComparisonExpr:
    """``left <op> right`` — op in = != < <= > >=."""

    op: str
    left: Term
    right: Term


@dataclass(frozen=True)
class ChainedEquality:
    """``t1 = t2 = t3 ...`` as written in the paper's templates.

    E.g. ``Station.Country = Weather.Country = ?`` (Table 1, Q3-Q5).
    """

    terms: tuple[Term, ...]


@dataclass(frozen=True)
class BetweenExpr:
    """``column BETWEEN low AND high`` (inclusive both ends)."""

    column: Column
    low: Term
    high: Term


@dataclass(frozen=True)
class InExpr:
    """``column IN (v1, v2, ...)``."""

    column: Column
    values: tuple[Term, ...]


@dataclass(frozen=True)
class NotExpr:
    operand: "Condition"


@dataclass(frozen=True)
class AndExpr:
    operands: tuple["Condition", ...]


@dataclass(frozen=True)
class OrExpr:
    operands: tuple["Condition", ...]


Condition = (
    ComparisonExpr | ChainedEquality | BetweenExpr | InExpr | NotExpr | AndExpr | OrExpr
)


@dataclass(frozen=True)
class SelectItem:
    """One SELECT-list item: a column or an aggregate call, with alias."""

    column: Column | None = None
    aggregate_func: str | None = None
    #: Aggregate argument; None + func=COUNT means COUNT(*).
    aggregate_arg: "ScalarExpr | None" = None
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    """A FROM-list entry ``name [alias]``."""

    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class OrderItem:
    column: Column
    descending: bool = False


@dataclass
class SelectStatement:
    """The full parse tree of one SELECT statement."""

    items: list[SelectItem]            # empty means SELECT *
    tables: list[TableRef] = field(default_factory=list)
    where: Condition | None = None
    group_by: list[Column] = field(default_factory=list)
    having: Condition | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    distinct: bool = False
    limit: int | None = None
    parameter_count: int = 0
