"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"      # = != < <= > >=
    COMMA = "comma"
    DOT = "dot"
    LPAREN = "lparen"
    RPAREN = "rparen"
    STAR = "star"              # '*' — SELECT-list star and multiplication
    PLUS = "plus"
    MINUS = "minus"
    SLASH = "slash"
    PARAMETER = "parameter"    # ?
    EOF = "eof"


#: Reserved words recognized by the parser (upper-cased by the lexer).
KEYWORDS = frozenset(
    {
        "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
        "ORDER", "LIMIT", "AND", "OR", "NOT", "AS", "BETWEEN", "IN",
        "ASC", "DESC", "COUNT", "SUM", "AVG", "MIN", "MAX",
        "JOIN", "INNER", "ON",
    }
)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source offset (for error messages)."""

    type: TokenType
    value: Any
    position: int

    def matches_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.value!r})"
