"""SQL frontend: tokenizer, parser, and semantic analyzer."""

from repro.sqlparser.analyzer import SchemaProvider, analyze, compile_sql
from repro.sqlparser.ast import SelectStatement
from repro.sqlparser.lexer import tokenize
from repro.sqlparser.parser import parse

__all__ = [
    "SchemaProvider",
    "SelectStatement",
    "analyze",
    "compile_sql",
    "parse",
    "tokenize",
]
