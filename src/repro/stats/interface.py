"""The updatable-statistic interface PayLess plugs into.

Section 3 of the paper: "PayLess is indeed amenable for any updatable
statistic.  As our focus ... is to give a proof-of-concept first solution,
we will test other updatable statistics (e.g., [25]) in place of ISOMER in
the next version."  This module defines that plug point: anything with
``estimate`` / ``observe`` / ``cardinality`` can drive the optimizer, and
:data:`STATISTIC_FACTORIES` registers the built-in choices:

* ``"isomer"`` — the default multidimensional feedback histogram
  (:class:`~repro.stats.isomer.FeedbackHistogram`);
* ``"independence"`` — per-dimension 1-d feedback histograms combined under
  the attribute-independence assumption (a JIT-statistics-style baseline);
* ``"uniform"`` — never learns; pure textbook uniform estimates.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.errors import StatisticsError
from repro.semstore.boxes import Box
from repro.semstore.space import BoxSpace


class UpdatableStatistic(Protocol):
    """What the optimizer and executor require from a statistic."""

    cardinality: int
    feedback_count: int

    def estimate(self, box: Box) -> float: ...

    def observe(self, box: Box, actual_count: int) -> None: ...

    def estimate_full(self) -> float: ...


StatisticFactory = Callable[[BoxSpace, int], UpdatableStatistic]


def make_statistic(kind: str, space: BoxSpace, cardinality: int):
    """Instantiate a registered statistic by name."""
    try:
        factory = STATISTIC_FACTORIES[kind]
    except KeyError:
        raise StatisticsError(
            f"unknown statistic {kind!r}; choose from "
            f"{sorted(STATISTIC_FACTORIES)}"
        ) from None
    return factory(space, cardinality)


def _isomer(space: BoxSpace, cardinality: int):
    from repro.stats.isomer import FeedbackHistogram

    return FeedbackHistogram(space, cardinality)


def _independence(space: BoxSpace, cardinality: int):
    from repro.stats.onedim import IndependenceHistogram

    return IndependenceHistogram(space, cardinality)


def _uniform(space: BoxSpace, cardinality: int):
    from repro.stats.onedim import UniformStatistic

    return UniformStatistic(space, cardinality)


STATISTIC_FACTORIES: dict[str, StatisticFactory] = {
    "isomer": _isomer,
    "independence": _independence,
    "uniform": _uniform,
}
