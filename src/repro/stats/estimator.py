"""Cardinality estimation helpers on top of the catalog.

These are the "basic textbook methods" the paper falls back on before
feedback exists (Section 4.3): uniform distribution over published domains,
attribute-independence, and containment-of-value-sets for joins.  Once the
feedback histogram has observations the same entry points transparently
return refined estimates, because they all route through the histogram.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.relational.query import AttributeConstraint
from repro.semstore.boxes import Box
from repro.stats.catalog import TableStatistics


def estimate_box(statistics: TableStatistics, box: Box) -> float:
    """Estimated tuples of a table inside ``box``."""
    return statistics.histogram.estimate(box)


def estimate_boxes(statistics: TableStatistics, boxes: Sequence[Box]) -> float:
    """Estimated tuples inside a union of disjoint boxes."""
    return sum(statistics.histogram.estimate(box) for box in boxes)


def estimate_constraints(
    statistics: TableStatistics,
    constraints: Sequence[AttributeConstraint],
) -> float:
    """Estimated tuples matching a conjunction of (pushable) constraints."""
    boxes = statistics.space.boxes_for_constraints(constraints)
    return estimate_boxes(statistics, boxes)


def estimate_distinct(
    statistics: TableStatistics,
    attribute: str,
    tuple_count: float,
) -> float:
    """Expected distinct values of ``attribute`` among ``tuple_count`` tuples.

    Textbook balls-into-bins: with ``d`` possible values and ``n`` tuples,
    ``d * (1 - (1 - 1/d)^n)``, capped by both ``d`` and ``n``.
    """
    if tuple_count <= 0:
        return 0.0
    domain = statistics.domain_size(attribute)
    if domain <= 0:
        return 0.0
    expected = domain * (1.0 - math.pow(1.0 - 1.0 / domain, tuple_count))
    return min(expected, float(domain), tuple_count)


def transactions_for_estimate(estimate: float, tuples_per_transaction: int) -> int:
    """Estimated transactions for an estimated record count (Eq. 1)."""
    if estimate <= 0:
        return 0
    return math.ceil(estimate / tuples_per_transaction)
