"""An ISOMER-style feedback histogram over a table's box space.

The paper plugs ISOMER [Srivastava et al., ICDE'06] into PayLess as its
updatable statistic: cardinality estimates start from the textbook uniform
assumption over published domains and become *consistent with every observed
query result* as feedback arrives.  This module implements that contract
with an STHoles-flavoured structure that is simpler than full ISOMER's
iterative-scaling solver but preserves the property the optimizer needs:

* the table's total cardinality is known and fixed;
* a set of disjoint *refined boxes* carries exact observed counts;
* everything outside the refined region follows the maximum-entropy choice —
  the residual count spread uniformly over the residual volume.

Feedback with a region that overlaps existing refined boxes splits those
boxes, apportioning their counts by volume (the max-entropy assumption
within a box), then records the new region exactly — so re-estimating any
previously observed region returns its observed count.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import StatisticsError
from repro.semstore.boxes import Box
from repro.semstore.space import BoxSpace

#: Soft cap on refined boxes; beyond it the smallest fragments are folded
#: back into the uniform residual to bound estimation cost (each estimate
#: is linear in this count, and Algorithm 1 estimates many boxes).
DEFAULT_MAX_BOXES = 512


@dataclass
class _Refined:
    box: Box
    count: float
    #: Cached ``box.volume()`` — the estimate hot loop reads it once per
    #: refined box per call, and recomputing the extent product dominated
    #: profile time before it was cached here.
    volume: int = 0

    def __post_init__(self) -> None:
        if self.volume == 0:
            self.volume = self.box.volume()


class FeedbackHistogram:
    """Uniform-until-observed cardinality estimates for one table."""

    def __init__(
        self,
        space: BoxSpace,
        cardinality: int,
        max_boxes: int = DEFAULT_MAX_BOXES,
    ):
        if cardinality < 0:
            raise StatisticsError("cardinality cannot be negative")
        if max_boxes < 1:
            raise StatisticsError("max_boxes must be positive")
        self.space = space
        self.cardinality = cardinality
        self.max_boxes = max_boxes
        self._refined: list[_Refined] = []
        #: Running totals over ``_refined`` (volume in grid cells, count in
        #: tuples), maintained by every writer so ``estimate`` never has to
        #: re-sum the whole list.
        self._total_refined_volume = 0
        self._total_refined_count = 0.0
        self.feedback_count = 0
        #: Guards ``_refined``/totals/``feedback_count``: concurrent
        #: sessions share one histogram per table.  Writers install a NEW
        #: list (copy-on-write, never in-place mutation), so ``estimate``
        #: only holds the lock long enough to snapshot the reference and
        #: the matching totals.
        self._lock = threading.Lock()

    # -- estimation -----------------------------------------------------------

    def estimate(self, box: Box) -> float:
        """Estimated number of tuples inside ``box``."""
        full = self.space.full_box
        query = full.intersect(box)
        if query is None:
            return 0.0
        estimate = 0.0
        query_refined_volume = 0
        with self._lock:
            # Writers replace the list wholesale, so holding the reference
            # outside the lock is safe; the totals are snapshotted with it
            # so both describe the same refined set.
            refined_snapshot = self._refined
            refined_volume = self._total_refined_volume
            refined_count = self._total_refined_count
        query_extents = query.extents
        for refined in refined_snapshot:
            # Inline the box intersection on raw extents: the hot loop
            # runs once per refined box per estimate, and allocating an
            # intermediate Box per overlap dominated its cost.
            overlap_volume = 1
            for (q_low, q_high), (r_low, r_high) in zip(
                query_extents, refined.box.extents
            ):
                low = q_low if q_low > r_low else r_low
                high = q_high if q_high < r_high else r_high
                if low >= high:
                    overlap_volume = 0
                    break
                overlap_volume *= high - low
            if overlap_volume:
                query_refined_volume += overlap_volume
                estimate += refined.count * overlap_volume / refined.volume
        residual_count = max(self.cardinality - refined_count, 0.0)
        residual_volume = full.volume() - refined_volume
        query_residual_volume = query.volume() - query_refined_volume
        if residual_volume > 0 and query_residual_volume > 0:
            estimate += residual_count * query_residual_volume / residual_volume
        return estimate

    def estimate_full(self) -> float:
        return self.estimate(self.space.full_box)

    # -- feedback -------------------------------------------------------------

    def observe(self, box: Box, actual_count: int) -> None:
        """Record that ``box`` was observed to contain ``actual_count`` tuples.

        Existing refined boxes overlapping ``box`` are split; the piece
        inside ``box`` is discarded (superseded by the exact observation)
        and the outside pieces keep a volume-proportional share of the old
        count.
        """
        if actual_count < 0:
            raise StatisticsError("observed count cannot be negative")
        full = self.space.full_box
        observed = full.intersect(box)
        if observed is None:
            return
        with self._lock:
            survivors: list[_Refined] = []
            for refined in self._refined:
                overlap = refined.box.intersect(observed)
                if overlap is None:
                    survivors.append(refined)
                    continue
                outside_pieces = refined.box.subtract(observed)
                old_volume = refined.volume
                for piece in outside_pieces:
                    survivors.append(
                        _Refined(
                            box=piece,
                            count=refined.count * piece.volume() / old_volume,
                        )
                    )
            survivors.append(
                _Refined(box=observed, count=float(actual_count))
            )
            self._refined = survivors
            self.feedback_count += 1
            if len(self._refined) > self.max_boxes:
                self._compact()
            self._recompute_totals()

    def _compact(self) -> None:
        """Fold the smallest fragments back into the uniform residual.

        Called with ``_lock`` held (only from :meth:`observe`).  Builds a
        new list rather than sorting in place — lock-free readers may
        still be iterating the current one.
        """
        self._refined = sorted(
            self._refined,
            key=lambda refined: refined.volume,
            reverse=True,
        )[: self.max_boxes // 2]

    def _recompute_totals(self) -> None:
        """Refresh the running totals.  Called with ``_lock`` held."""
        self._total_refined_volume = sum(r.volume for r in self._refined)
        self._total_refined_count = sum(r.count for r in self._refined)

    # -- persistence ------------------------------------------------------------

    def state_snapshot(self) -> dict:
        """The histogram's learned state as plain JSON-ready data.

        Paired with :meth:`restore_state`; the box JSON shape matches
        :func:`repro.durable.records.box_to_json` so snapshots and the
        legacy persistence blob share one format.
        """
        with self._lock:
            return {
                "cardinality": self.cardinality,
                "feedback_count": self.feedback_count,
                "refined": [
                    {
                        "box": [list(extent) for extent in refined.box.extents],
                        "count": refined.count,
                    }
                    for refined in self._refined
                ],
            }

    def restore_state(
        self,
        cardinality: int,
        feedback_count: int,
        refined: list[tuple[Box, float]],
    ) -> None:
        """Overwrite the learned state with a persisted one."""
        with self._lock:
            self.cardinality = cardinality
            self.feedback_count = feedback_count
            self._refined = [
                _Refined(box=box, count=count) for box, count in refined
            ]
            self._recompute_totals()

    # -- introspection ----------------------------------------------------------

    @property
    def refined_box_count(self) -> int:
        return len(self._refined)

    def refined_total(self) -> float:
        return sum(refined.count for refined in self._refined)
