"""Per-query cardinality overlay for adaptive re-optimization.

When the executor re-plans mid-query (:class:`~repro.core.objectives.
AdaptivePolicy`), the exact cardinalities observed while running the
prefix must reach the planner *without* mutating the shared ISOMER
catalog — under concurrent serving (8 workers, PR 6) a sibling query
planning the same tables at the same instant must keep seeing the
shared estimates, and a re-plan that loses a race must leave nothing
behind.

A :class:`CardinalityOverlay` is therefore strictly query-private: the
executor builds a fresh one per re-plan from its own staged rows, hands
it to :meth:`Optimizer.optimize_suffix`, and drops it when planning
returns.  No instance is ever shared across threads, so the class needs
no locks — the thread-safety story is ownership, not synchronization.
The shared :class:`~repro.stats.isomer.FeedbackHistogram` still receives
durable feedback through its own locked ``observe`` path exactly as
before; the overlay only *layers* observed truths over its estimates
for the duration of one suffix-planning call.
"""

from __future__ import annotations


class CardinalityOverlay:
    """Observed per-table row counts and per-column distinct counts.

    Keys are case-insensitive (the planner lowercases table names
    internally).  ``None`` from a getter means "no observation — fall
    back to the shared estimate".
    """

    __slots__ = ("_region_rows", "_distinct")

    def __init__(self) -> None:
        self._region_rows: dict[str, float] = {}
        self._distinct: dict[tuple[str, str], float] = {}

    # -- table-level region cardinality ---------------------------------------

    def set_region_rows(self, table: str, rows: float) -> None:
        """Record the exact row count of ``table``'s query region."""
        self._region_rows[table.lower()] = float(rows)

    def region_rows(self, table: str) -> float | None:
        return self._region_rows.get(table.lower())

    # -- column-level distinct counts -----------------------------------------

    def set_distinct(self, table: str, column: str, count: float) -> None:
        """Record the exact distinct count of ``table.column`` in-region."""
        self._distinct[(table.lower(), column.lower())] = float(count)

    def distinct(self, table: str, column: str) -> float | None:
        return self._distinct.get((table.lower(), column.lower()))

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._region_rows) + len(self._distinct)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CardinalityOverlay(region_rows={self._region_rows!r}, "
            f"distinct={self._distinct!r})"
        )
