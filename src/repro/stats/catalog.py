"""The metadata catalog: what PayLess knows about every table.

At registration time the only knowledge is the market's *basic statistics*
(cardinality + per-attribute domains, Section 2.1).  The catalog pairs those
with the table's :class:`BoxSpace` and a feedback histogram that learns from
every executed call (Section 4.3: start from the uniform assumption, refine
with feedback).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StatisticsError
from repro.market.dataset import BasicStatistics
from repro.relational.schema import Domain, Schema
from repro.semstore.space import BoxSpace
from repro.stats.interface import UpdatableStatistic, make_statistic


@dataclass
class TableStatistics:
    """Everything the optimizer can ask about one table."""

    table: str
    schema: Schema
    cardinality: int
    space: BoxSpace
    histogram: UpdatableStatistic

    def domain_size(self, attribute: str) -> int:
        """Number of distinct values the attribute's axis can take."""
        index = self.space.dimension_index(attribute)
        if index is None:
            raise StatisticsError(
                f"{self.table}: {attribute!r} is not a dimension"
            )
        dimension = self.space.dimensions[index]
        return dimension.high - dimension.low


class Catalog:
    """Name → :class:`TableStatistics` registry."""

    def __init__(self) -> None:
        self._tables: dict[str, TableStatistics] = {}

    def register(
        self,
        table: str,
        schema: Schema,
        space: BoxSpace,
        statistics: BasicStatistics,
        statistic: str = "isomer",
    ) -> TableStatistics:
        key = table.lower()
        if key in self._tables:
            raise StatisticsError(f"table {table!r} already in catalog")
        entry = TableStatistics(
            table=table,
            schema=schema,
            cardinality=statistics.cardinality,
            space=space,
            histogram=make_statistic(statistic, space, statistics.cardinality),
        )
        self._tables[key] = entry
        return entry

    def statistics(self, table: str) -> TableStatistics:
        try:
            return self._tables[table.lower()]
        except KeyError:
            raise StatisticsError(f"table {table!r} not in catalog") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables
