"""Statistics: catalog, estimators, and pluggable updatable statistics."""

from repro.stats.catalog import Catalog, TableStatistics
from repro.stats.estimator import (
    estimate_box,
    estimate_boxes,
    estimate_constraints,
    estimate_distinct,
    transactions_for_estimate,
)
from repro.stats.interface import (
    STATISTIC_FACTORIES,
    UpdatableStatistic,
    make_statistic,
)
from repro.stats.isomer import DEFAULT_MAX_BOXES, FeedbackHistogram
from repro.stats.onedim import IndependenceHistogram, UniformStatistic
from repro.stats.overlay import CardinalityOverlay

__all__ = [
    "CardinalityOverlay",
    "Catalog",
    "DEFAULT_MAX_BOXES",
    "FeedbackHistogram",
    "IndependenceHistogram",
    "STATISTIC_FACTORIES",
    "TableStatistics",
    "UniformStatistic",
    "UpdatableStatistic",
    "estimate_box",
    "estimate_boxes",
    "estimate_constraints",
    "estimate_distinct",
    "make_statistic",
    "transactions_for_estimate",
]
