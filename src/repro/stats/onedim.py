"""Alternative updatable statistics: independence-assumption and uniform.

Two simpler statistics to plug into PayLess's learning loop in place of the
default multidimensional feedback histogram (see
:mod:`repro.stats.interface`):

* :class:`IndependenceHistogram` keeps one *1-d* feedback histogram per
  dimension and combines the marginals under the textbook
  attribute-independence assumption.  It learns from feedback whose region
  spans the full domain on every other dimension (an exact marginal
  observation); partial feedback refines nothing — which is exactly the
  blind spot of per-attribute JIT statistics that motivates ISOMER-style
  multidimensional structures.
* :class:`UniformStatistic` never learns at all — the pure Section 4.3
  cold-start estimator, useful as an ablation floor.
"""

from __future__ import annotations

from repro.errors import StatisticsError
from repro.semstore.boxes import Box
from repro.semstore.space import BoxSpace, Dimension
from repro.stats.isomer import FeedbackHistogram


def _marginal_space(table: str, dimension: Dimension) -> BoxSpace:
    return BoxSpace(table=f"{table}:{dimension.attribute}", dimensions=[dimension])


class IndependenceHistogram:
    """Per-dimension marginals combined under independence.

    Thread-safety rides on the per-marginal :class:`FeedbackHistogram`
    locks; this class's own mutations (cardinality / feedback_count) are
    single attribute rebinds, which concurrent estimates may see slightly
    stale — acceptable for an estimator.
    """

    def __init__(self, space: BoxSpace, cardinality: int):
        if cardinality < 0:
            raise StatisticsError("cardinality cannot be negative")
        self.space = space
        self.cardinality = cardinality
        self.feedback_count = 0
        self._marginals = [
            FeedbackHistogram(_marginal_space(space.table, dimension), cardinality)
            for dimension in space.dimensions
        ]

    def estimate(self, box: Box) -> float:
        full = self.space.full_box
        query = full.intersect(box)
        if query is None:
            return 0.0
        if self.cardinality == 0:
            return 0.0
        estimate = float(self.cardinality)
        for marginal, extent in zip(self._marginals, query.extents):
            fraction = marginal.estimate(Box((extent,))) / self.cardinality
            estimate *= max(min(fraction, 1.0), 0.0)
        return estimate

    def estimate_full(self) -> float:
        return self.estimate(self.space.full_box)

    def observe(self, box: Box, actual_count: int) -> None:
        """Learn only from exact marginal observations.

        A region that spans the whole domain on every dimension but one
        pins down that dimension's marginal exactly; anything else would
        require cross-dimension reasoning this statistic cannot do.
        """
        if actual_count < 0:
            raise StatisticsError("observed count cannot be negative")
        full = self.space.full_box
        observed = full.intersect(box)
        if observed is None:
            return
        partial_axes = [
            axis
            for axis, (extent, full_extent) in enumerate(
                zip(observed.extents, full.extents)
            )
            if extent != full_extent
        ]
        self.feedback_count += 1
        if len(partial_axes) == 0:
            # Whole-table observation: correct the cardinality everywhere.
            self.cardinality = actual_count
            for marginal in self._marginals:
                marginal.cardinality = actual_count
            return
        if len(partial_axes) == 1:
            axis = partial_axes[0]
            self._marginals[axis].observe(
                Box((observed.extents[axis],)), actual_count
            )


class UniformStatistic:
    """The textbook uniform estimator; feedback is ignored."""

    def __init__(self, space: BoxSpace, cardinality: int):
        if cardinality < 0:
            raise StatisticsError("cardinality cannot be negative")
        self.space = space
        self.cardinality = cardinality
        self.feedback_count = 0

    def estimate(self, box: Box) -> float:
        full = self.space.full_box
        query = full.intersect(box)
        if query is None:
            return 0.0
        volume = full.volume()
        if volume == 0:
            return 0.0
        return self.cardinality * query.volume() / volume

    def estimate_full(self) -> float:
        return float(self.cardinality)

    def observe(self, box: Box, actual_count: int) -> None:
        if actual_count < 0:
            raise StatisticsError("observed count cannot be negative")
        self.feedback_count += 1  # counted, but deliberately unused
