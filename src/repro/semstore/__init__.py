"""Semantic store: box algebra, covered regions, cached rows, consistency."""

from repro.semstore.boxes import (
    Box,
    BoxError,
    bounding_box,
    covers_fully,
    merge_adjacent,
    remainder_decomposition,
    subtract_all,
    union_volume,
)
from repro.semstore.consistency import ConsistencyLevel, ConsistencyPolicy
from repro.semstore.space import BoxSpace, Dimension
from repro.semstore.store import CoveredBox, SemanticStore, TableStore

__all__ = [
    "Box",
    "BoxError",
    "BoxSpace",
    "ConsistencyLevel",
    "ConsistencyPolicy",
    "CoveredBox",
    "Dimension",
    "SemanticStore",
    "TableStore",
    "bounding_box",
    "covers_fully",
    "merge_adjacent",
    "remainder_decomposition",
    "subtract_all",
    "union_volume",
]
