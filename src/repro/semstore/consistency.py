"""Consistency levels for reusing stored query results (Section 4.3).

The paper sketches three levels a buyer organization can choose from:

* **weak** — every stored result is reusable forever (the default; sound
  because data-market datasets are append-only);
* **X-week** — only results retrieved within the last X weeks are reused;
* **strong** — semantic query rewriting is disabled and every query goes to
  the market.

The store keeps a logical clock in *weeks* (the harness advances it);
policies simply decide which covered regions count.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ConsistencyLevel(enum.Enum):
    WEAK = "weak"
    X_WEEK = "x-week"
    STRONG = "strong"


@dataclass(frozen=True)
class ConsistencyPolicy:
    """A consistency level plus its window (for X-week)."""

    level: ConsistencyLevel = ConsistencyLevel.WEAK
    window_weeks: float | None = None

    def __post_init__(self) -> None:
        if self.level is ConsistencyLevel.X_WEEK and (
            self.window_weeks is None or self.window_weeks <= 0
        ):
            raise ValueError("X-week consistency needs a positive window")

    @property
    def rewriting_enabled(self) -> bool:
        return self.level is not ConsistencyLevel.STRONG

    def is_fresh(self, stored_at: float, now: float) -> bool:
        """Whether a result stored at clock ``stored_at`` is reusable now."""
        if self.level is ConsistencyLevel.STRONG:
            return False
        if self.level is ConsistencyLevel.WEAK:
            return True
        return now - stored_at <= self.window_weeks

    @classmethod
    def weak(cls) -> "ConsistencyPolicy":
        return cls(ConsistencyLevel.WEAK)

    @classmethod
    def strong(cls) -> "ConsistencyPolicy":
        return cls(ConsistencyLevel.STRONG)

    @classmethod
    def weeks(cls, window: float) -> "ConsistencyPolicy":
        return cls(ConsistencyLevel.X_WEEK, window_weeks=window)
