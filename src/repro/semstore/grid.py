"""Uniform spatial grid indexes for the semantic store.

The store's three hot questions — "is this request region fully covered?",
"what is the remainder?", and "which cached rows fall inside this region?" —
were all answered by flat scans over every covered box / every cached row.
Both scans grow linearly with store age, which is exactly what the store's
never-evict design makes unbounded.  This module provides two sub-linear
indexes over the per-table :class:`~repro.semstore.space.BoxSpace` grid:

* :class:`BoxGridIndex` — covered boxes bucketed into a uniform grid whose
  cell size is derived from the space extents.  A probe for a query box
  touches only the buckets the query overlaps, returning a *superset* of
  the truly-overlapping covers in insertion order (callers clip/intersect
  anyway, so supersets are harmless and keep insertion O(cells per box)).
  Boxes spanning more than :data:`OVERSIZED_CELL_CAP` buckets go into a
  small always-checked side list instead of being exploded into thousands
  of bucket entries.

* :class:`PointGridIndex` — cached-row grid points hashed by coarse grid
  cell, so region row-assembly visits only the rows whose cell overlaps
  the region, O(matching rows) instead of O(all rows).

Both indexes return ids in ascending insertion order, which is what makes
the indexed store paths *byte-identical* to the brute-force scans (the
remainder pipeline's dedup/sort steps are stable in input order).
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Sequence

from repro.semstore.boxes import Box, Extent

#: Target number of grid cells along each axis.  Coarse on purpose: the
#: index only has to prune, not answer exactly, and fewer cells keep the
#: per-box insertion cost down.
TARGET_CELLS_PER_AXIS = 32

#: A box overlapping more than this many buckets is kept in the oversized
#: side list (always probed) instead of being inserted into every bucket.
OVERSIZED_CELL_CAP = 256


class _GridGeometry:
    """Shared cell arithmetic over a fixed set of axis extents."""

    __slots__ = ("origins", "cell_sizes")

    def __init__(self, extents: Sequence[Extent]):
        self.origins = tuple(low for low, _ in extents)
        self.cell_sizes = tuple(
            max(1, (high - low + TARGET_CELLS_PER_AXIS - 1) // TARGET_CELLS_PER_AXIS)
            for low, high in extents
        )

    def cell_of_point(self, point: Sequence[int]) -> tuple[int, ...]:
        origins = self.origins
        sizes = self.cell_sizes
        return tuple(
            (value - origins[axis]) // sizes[axis]
            for axis, value in enumerate(point)
        )

    def cell_ranges(self, box: Box) -> list[tuple[int, int]]:
        """Inclusive cell-coordinate range of ``box`` along each axis."""
        origins = self.origins
        sizes = self.cell_sizes
        return [
            (
                (low - origins[axis]) // sizes[axis],
                (high - 1 - origins[axis]) // sizes[axis],
            )
            for axis, (low, high) in enumerate(box.extents)
        ]

    @staticmethod
    def cell_count(ranges: Sequence[tuple[int, int]]) -> int:
        count = 1
        for low, high in ranges:
            count *= high - low + 1
        return count

    @staticmethod
    def cells(ranges: Sequence[tuple[int, int]]) -> Iterable[tuple[int, ...]]:
        return product(*(range(low, high + 1) for low, high in ranges))


class BoxGridIndex:
    """Grid index over covered boxes; ids are caller-assigned and stable."""

    def __init__(self, extents: Sequence[Extent]):
        self._geometry = _GridGeometry(extents)
        self._buckets: dict[tuple[int, ...], list[int]] = {}
        #: ids of boxes too large to bucket; always part of every probe.
        self._oversized: list[int] = []
        #: id -> the bucket cells (or None for oversized) for O(1) removal.
        self._placements: dict[int, list[tuple[int, ...]] | None] = {}

    def __len__(self) -> int:
        return len(self._placements)

    def insert(self, box_id: int, box: Box) -> None:
        ranges = self._geometry.cell_ranges(box)
        if self._geometry.cell_count(ranges) > OVERSIZED_CELL_CAP:
            self._oversized.append(box_id)
            self._placements[box_id] = None
            return
        cells = list(self._geometry.cells(ranges))
        for cell in cells:
            self._buckets.setdefault(cell, []).append(box_id)
        self._placements[box_id] = cells

    def bulk_load(self, boxes: Sequence[Box], start_id: int = 0) -> None:
        """Insert ``boxes`` as ids ``start_id..start_id+n-1`` in one tight
        loop — the cold-restart fast path (no per-box method dispatch)."""
        origins = self._geometry.origins
        sizes = self._geometry.cell_sizes
        buckets = self._buckets
        placements = self._placements
        for offset, box in enumerate(boxes):
            box_id = start_id + offset
            ranges = [
                (
                    (low - origins[axis]) // sizes[axis],
                    (high - 1 - origins[axis]) // sizes[axis],
                )
                for axis, (low, high) in enumerate(box.extents)
            ]
            count = 1
            for low, high in ranges:
                count *= high - low + 1
            if count > OVERSIZED_CELL_CAP:
                self._oversized.append(box_id)
                placements[box_id] = None
                continue
            cells = list(
                product(*(range(low, high + 1) for low, high in ranges))
            )
            for cell in cells:
                bucket = buckets.get(cell)
                if bucket is None:
                    buckets[cell] = [box_id]
                else:
                    bucket.append(box_id)
            placements[box_id] = cells

    def export_state(self) -> dict:
        """Deep-enough copies of the index internals for persistence.

        The values are primitive containers (tuples, lists, dicts) so a
        snapshot can serialize them without touching index code, and
        :meth:`adopt_state` can re-inhale them at cold restart instead of
        re-deriving every bucket."""
        return {
            "buckets": {cell: list(ids) for cell, ids in self._buckets.items()},
            "oversized": list(self._oversized),
            "placements": dict(self._placements),
        }

    def adopt_state(self, state: dict) -> None:
        """Adopt exported internals wholesale (cold-restart fast path).

        Ownership of ``state`` transfers to the index: the caller must
        hand over a freshly deserialized (or otherwise unshared) value —
        cell keys must already be tuples, as pickle round-trips them.
        Only valid on an empty index."""
        if self._placements:
            raise ValueError("adopt_state requires an empty index")
        self._buckets = state["buckets"]
        self._oversized = state["oversized"]
        self._placements = state["placements"]

    def remove(self, box_id: int) -> None:
        cells = self._placements.pop(box_id)
        if cells is None:
            self._oversized.remove(box_id)
            return
        for cell in cells:
            bucket = self._buckets.get(cell)
            if bucket is not None:
                bucket.remove(box_id)
                if not bucket:
                    del self._buckets[cell]

    def candidates(self, box: Box) -> list[int]:
        """Ids of boxes *possibly* overlapping ``box``, ascending.

        A superset of the truly-overlapping set (cell-granular), plus every
        oversized box.  Ascending ids == insertion order, which downstream
        stable sorts rely on for brute-force equivalence.
        """
        ranges = self._geometry.cell_ranges(box)
        buckets = self._buckets
        found: set[int] = set(self._oversized)
        if self._geometry.cell_count(ranges) > len(buckets):
            # The probe box spans more cells than are occupied: walk the
            # occupied buckets instead of enumerating empty ones.
            for cell, ids in buckets.items():
                if all(
                    low <= coordinate <= high
                    for coordinate, (low, high) in zip(cell, ranges)
                ):
                    found.update(ids)
        else:
            for cell in self._geometry.cells(ranges):
                ids = buckets.get(cell)
                if ids is not None:
                    found.update(ids)
        return sorted(found)


class PointGridIndex:
    """Coarse-cell hash of cached-row grid points.

    Append-only (the store never evicts rows); ids are list positions in
    the store's row list, so ascending ids reproduce row insertion order.
    """

    def __init__(self, extents: Sequence[Extent]):
        self._geometry = _GridGeometry(extents)
        self._cells: dict[tuple[int, ...], list[int]] = {}

    def insert(self, row_id: int, point: Sequence[int]) -> None:
        cell = self._geometry.cell_of_point(point)
        self._cells.setdefault(cell, []).append(row_id)

    def bulk_load(self, points: Sequence[Sequence[int] | None]) -> None:
        """Insert ``points[i]`` as row id ``i`` for the whole sequence
        (``None`` entries are off-grid rows and are skipped).  One tight
        loop with the cell arithmetic inlined — at cold restart this runs
        once per cached row, and the per-call overhead of
        :meth:`insert`/:meth:`_GridGeometry.cell_of_point` dominates."""
        origins = self._geometry.origins
        sizes = self._geometry.cell_sizes
        cells = self._cells
        if len(origins) == 2:
            origin_a, origin_b = origins
            size_a, size_b = sizes
            for row_id, point in enumerate(points):
                if point is None:
                    continue
                cell = (
                    (point[0] - origin_a) // size_a,
                    (point[1] - origin_b) // size_b,
                )
                bucket = cells.get(cell)
                if bucket is None:
                    cells[cell] = [row_id]
                else:
                    bucket.append(row_id)
            return
        for row_id, point in enumerate(points):
            if point is None:
                continue
            cell = tuple(
                (value - origins[axis]) // sizes[axis]
                for axis, value in enumerate(point)
            )
            bucket = cells.get(cell)
            if bucket is None:
                cells[cell] = [row_id]
            else:
                bucket.append(row_id)

    def export_state(self) -> dict:
        """Copies of the cell buckets, primitive enough to serialize."""
        return {
            "cells": {cell: list(ids) for cell, ids in self._cells.items()}
        }

    def adopt_state(self, state: dict) -> None:
        """Adopt exported buckets wholesale; same ownership contract as
        :meth:`BoxGridIndex.adopt_state`.  Only valid on an empty index."""
        if self._cells:
            raise ValueError("adopt_state requires an empty index")
        self._cells = state["cells"]

    def candidates(self, box: Box) -> list[int]:
        """Row ids whose cell overlaps ``box`` (superset, unsorted)."""
        ranges = self._geometry.cell_ranges(box)
        cells = self._cells
        found: list[int] = []
        if self._geometry.cell_count(ranges) > len(cells):
            for cell, ids in cells.items():
                if all(
                    low <= coordinate <= high
                    for coordinate, (low, high) in zip(cell, ranges)
                ):
                    found.extend(ids)
        else:
            for cell in self._geometry.cells(ranges):
                ids = cells.get(cell)
                if ids is not None:
                    found.extend(ids)
        return found
