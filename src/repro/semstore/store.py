"""The semantic store: every REST call and its result, kept forever.

PayLess "stores all the data market access requests and their returned data
in a semantic store" (Figure 3, step 5.3) and deliberately never evicts —
cheap local storage buys freedom from ever re-buying the same tuples.  Per
market table the store tracks

* the union of *covered boxes* (the regions of constraint space whose tuples
  are locally complete), each stamped with the logical week it was fetched,
* the cached rows themselves (deduplicated), and

answers the two questions the optimizer and executor ask: "which part of
this request region is missing?" (remainder decomposition) and "give me the
cached rows inside this region" (result assembly).

Because the store never evicts, both questions must stay *sub-linear* in
store age: covered boxes live in a :class:`~repro.semstore.grid.BoxGridIndex`
and cached-row grid points in a :class:`~repro.semstore.grid.PointGridIndex`,
so probes touch only the grid buckets a query overlaps.  The pre-index flat
scans survive behind ``debug_bruteforce=True`` as the oracle the equivalence
tests compare against.  Every mutation bumps a per-table ``epoch``, which
the rewriter keys its memoization on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import ReproError
from repro.relational.schema import Schema
from repro.relational.table import Row
from repro.semstore.boxes import (
    Box,
    covers_fully,
    remainder_decomposition,
)
from repro.semstore.consistency import ConsistencyPolicy
from repro.semstore.grid import BoxGridIndex, PointGridIndex
from repro.semstore.space import BoxSpace


@dataclass(frozen=True)
class CoveredBox:
    """One stored region: where it is, when it was fetched, what it held."""

    box: Box
    stored_at: float
    row_count: int


class TableStore:
    """Per-table slice of the semantic store.

    ``debug_bruteforce`` selects the pre-index flat-scan probing for every
    coverage/remainder/assembly question; storage is identical either way,
    so the two modes must return byte-identical answers (asserted by the
    property tests in ``tests/test_store_index.py``).
    """

    def __init__(
        self, space: BoxSpace, schema: Schema, debug_bruteforce: bool = False
    ):
        self.space = space
        self.schema = schema
        self.debug_bruteforce = debug_bruteforce
        #: Per-table concurrency guard.  Every public mutation and probe
        #: takes it, so grid/point indexes never tear under concurrent
        #: sessions; it is an RLock so an executor holding it for a
        #: rewrite-record-assemble critical section can still call the
        #: probes.  Lock order (see DESIGN.md): a table lock may be held
        #: while entering the singleflight registry, never the reverse.
        self.lock = threading.RLock()
        #: Monotonically increasing mutation counter.  Anything derived
        #: from store state (rewrite results, coverage verdicts) is valid
        #: only for the epoch it was computed at.  Bumps happen under
        #: :attr:`lock`, so an epoch read inside the lock is exact.
        self.epoch: int = 0
        grid_extents = tuple(d.full_extent for d in space.dimensions)
        self._covers: dict[int, CoveredBox] = {}
        self._next_cover_id: int = 0
        self._cover_index = BoxGridIndex(grid_extents)
        self._rows: list[Row] = []
        #: Dedup set over ``_rows``; ``None`` after a bulk adopt until the
        #: first mutation needs it (hashing 100k restored rows costs more
        #: than a cold restart should pay for a read-only workload).
        self._row_set: set[Row] | None = set()
        #: Grid point of each cached row, computed once at insert time.
        self._points: list[tuple[int, ...] | None] = []
        #: Columnar bulk payload adopted at cold restart, materialized
        #: into ``_rows``/``_points`` on first touch (same idiom as
        #: ``Relation``'s columnar backing): recovery hands back control
        #: without paying for 100k row tuples the workload may not read.
        self._deferred_bulk: dict | None = None
        self._point_index = PointGridIndex(grid_extents)

    @property
    def cached_row_count(self) -> int:
        deferred = self._deferred_bulk
        if deferred is not None:
            return deferred["row_count"]
        return len(self._rows)

    @property
    def covered(self) -> list[CoveredBox]:
        """Covered regions in insertion order (read-only snapshot)."""
        with self.lock:
            return list(self._covers.values())

    @property
    def covered_count(self) -> int:
        return len(self._covers)

    # -- mutation ------------------------------------------------------------

    def record(self, box: Box, rows: Iterable[Row], stored_at: float) -> int:
        """Store a fetched region; returns how many rows were new."""
        with self.lock:
            self.epoch += 1
            self._materialize_deferred()
            new = 0
            count = 0
            row_set = self._ensure_row_set()
            for row in rows:
                count += 1
                if row not in row_set:
                    row_set.add(row)
                    self._point_index_insert(row)
                    new += 1
            # Consolidate the coverage set: a region subsumed by an
            # equally-fresh cover adds nothing, and covers subsumed by this
            # fresher region can be dropped.  Containment implies overlap,
            # so the grid index narrows both checks to overlapping covers
            # only.
            candidate_ids = self._overlapping_cover_ids(box)
            for cover_id in candidate_ids:
                existing = self._covers[cover_id]
                if existing.stored_at >= stored_at and existing.box.contains_box(
                    box
                ):
                    return new
            for cover_id in candidate_ids:
                existing = self._covers[cover_id]
                if existing.stored_at <= stored_at and box.contains_box(
                    existing.box
                ):
                    del self._covers[cover_id]
                    self._cover_index.remove(cover_id)
            self._append_cover(
                CoveredBox(box=box, stored_at=stored_at, row_count=count)
            )
            return new

    def restore_cover(self, covered: CoveredBox) -> None:
        """Re-insert a persisted cover verbatim (no re-consolidation)."""
        with self.lock:
            self.epoch += 1
            self._append_cover(covered)

    def restore_row(self, row: Row) -> bool:
        """Re-insert a persisted row; returns whether it was new."""
        with self.lock:
            self._materialize_deferred()
            row_set = self._ensure_row_set()
            if row in row_set:
                return False
            self.epoch += 1
            row_set.add(row)
            self._point_index_insert(row)
            return True

    def bulk_restore(
        self,
        covers: Sequence[CoveredBox],
        rows: Sequence[Row],
        points: Sequence[tuple[int, ...] | None] | None = None,
    ) -> None:
        """Load a snapshot's worth of state in one lock/epoch transaction.

        Unlike the per-item ``restore_*`` path this takes the lock once,
        bumps the epoch once, and — when the snapshot carries the
        precomputed grid ``points`` — skips :meth:`BoxSpace.row_point`
        entirely, which is the dominant cost of a cold restart at scale.
        Only valid on an empty table (it assumes no duplicate rows).
        """
        if points is not None and len(points) != len(rows):
            raise ReproError("bulk_restore: points/rows length mismatch")
        with self.lock:
            if self._rows or self._covers or self._deferred_bulk is not None:
                raise ReproError("bulk_restore requires an empty table")
            self.epoch += 1
            if points is None:
                row_set = self._ensure_row_set()
                for row in rows:
                    row_set.add(row)
                    self._point_index_insert(row)
            else:
                self._rows = list(rows)
                self._points = list(points)
                self._row_set = set(rows)
                self._point_index.bulk_load(points)
            if covers:
                start_id = self._next_cover_id
                for covered in covers:
                    self._covers[self._next_cover_id] = covered
                    self._next_cover_id += 1
                self._cover_index.bulk_load(
                    [covered.box for covered in covers], start_id=start_id
                )

    def export_bulk_state(self) -> dict:
        """The table's whole persistent state as primitive containers.

        Snapshots serialize this (e.g. with pickle) and feed it back to
        :meth:`adopt_bulk_state` at cold restart, which re-inhales rows,
        covers *and the prebuilt grid indexes* without re-deriving a
        single bucket.  Copies are taken under the table lock, so the
        caller may serialize at leisure."""
        with self.lock:
            self._materialize_deferred()
            # Rows and points go out columnar / flattened: deserializing
            # a handful of long primitive lists is several times faster
            # than re-materializing 100k three-element tuples, and adopt
            # rebuilds the tuples with one C-level zip.
            points_flat: list[int] = []
            points_none: list[int] = []
            dims = 0
            for row_id, point in enumerate(self._points):
                if point is None:
                    points_none.append(row_id)
                else:
                    points_flat.extend(point)
                    dims = len(point)
            return {
                "covers": [
                    (cover_id, covered.box.extents, covered.stored_at,
                     covered.row_count)
                    for cover_id, covered in self._covers.items()
                ],
                "next_cover_id": self._next_cover_id,
                "row_columns": [
                    list(column) for column in zip(*self._rows)
                ],
                "row_count": len(self._rows),
                "points_flat": points_flat,
                "points_none": points_none,
                "dims": dims,
                "point_index": self._point_index.export_state(),
                "cover_index": self._cover_index.export_state(),
            }

    def adopt_bulk_state(self, state: dict) -> None:
        """Adopt an exported state wholesale (one lock, one epoch bump).

        Ownership of ``state`` transfers to the table — hand over a
        freshly deserialized value.  Only valid on an empty table."""
        with self.lock:
            if self._rows or self._covers or self._deferred_bulk is not None:
                raise ReproError("adopt_bulk_state requires an empty table")
            self.epoch += 1
            # Box.unchecked: the extents round-tripped from validated
            # boxes (pickle preserves the tuples exactly), so re-running
            # __post_init__ on tens of thousands of covers buys nothing.
            self._covers = {
                cover_id: CoveredBox(
                    box=Box.unchecked(extents),
                    stored_at=stored_at,
                    row_count=row_count,
                )
                for cover_id, extents, stored_at, row_count in state["covers"]
            }
            self._next_cover_id = state["next_cover_id"]
            # Rows/points stay columnar until something reads them; the
            # grid indexes adopt now so coverage checks work immediately.
            self._deferred_bulk = state
            self._row_set = None  # rebuilt lazily on the first mutation
            self._point_index.adopt_state(state["point_index"])
            self._cover_index.adopt_state(state["cover_index"])

    def _materialize_deferred(self) -> None:
        """Build ``_rows``/``_points`` from a deferred bulk payload.

        Runs at most once per adopt, on the first row-touching call;
        callers must hold ``self.lock``."""
        state = self._deferred_bulk
        if state is None:
            return
        self._deferred_bulk = None
        columns = state["row_columns"]
        self._rows = list(zip(*columns)) if columns else []
        points_flat = state["points_flat"]
        dims = state["dims"]
        if points_flat:
            chunks = [iter(points_flat)] * dims
            grid_points = list(zip(*chunks))
        else:
            grid_points = []
        points_none = state["points_none"]
        if points_none:
            none_positions = set(points_none)
            grid_iter = iter(grid_points)
            self._points = [
                None if row_id in none_positions else next(grid_iter)
                for row_id in range(state["row_count"])
            ]
        else:
            self._points = grid_points

    def _ensure_row_set(self) -> set[Row]:
        row_set = self._row_set
        if row_set is None:
            self._materialize_deferred()
            row_set = self._row_set = set(self._rows)
        return row_set

    def _append_cover(self, covered: CoveredBox) -> None:
        cover_id = self._next_cover_id
        self._next_cover_id += 1
        self._covers[cover_id] = covered
        self._cover_index.insert(cover_id, covered.box)

    def _point_index_insert(self, row: Row) -> None:
        point = self.space.row_point(row, self.schema)
        row_id = len(self._rows)
        self._rows.append(row)
        self._points.append(point)
        if point is not None:
            self._point_index.insert(row_id, point)

    # -- coverage probes -------------------------------------------------------

    def _overlapping_cover_ids(self, box: Box) -> list[int]:
        """Ids of covers possibly overlapping ``box``, insertion-ordered."""
        if self.debug_bruteforce:
            return list(self._covers)
        return self._cover_index.candidates(box)

    def _fresh_overlapping_covers(
        self, box: Box, policy: ConsistencyPolicy, now: float
    ) -> list[Box]:
        covers = self._covers
        return [
            covers[cover_id].box
            for cover_id in self._overlapping_cover_ids(box)
            if policy.is_fresh(covers[cover_id].stored_at, now)
        ]

    def effective_covers(
        self, policy: ConsistencyPolicy, now: float
    ) -> list[Box]:
        """Covered boxes still reusable under ``policy`` at clock ``now``."""
        if not policy.rewriting_enabled:
            return []
        with self.lock:
            return [
                covered.box
                for covered in self._covers.values()
                if policy.is_fresh(covered.stored_at, now)
            ]

    def remainder(
        self, query: Box, policy: ConsistencyPolicy, now: float
    ) -> list[Box]:
        """Elementary boxes of the part of ``query`` that must be fetched."""
        if not policy.rewriting_enabled:
            return [query]
        with self.lock:
            return remainder_decomposition(
                query, self._fresh_overlapping_covers(query, policy, now)
            )

    def is_covered(
        self, query: Box, policy: ConsistencyPolicy, now: float
    ) -> bool:
        if not policy.rewriting_enabled:
            return False
        with self.lock:
            return covers_fully(
                query, self._fresh_overlapping_covers(query, policy, now)
            )

    # -- row assembly ----------------------------------------------------------

    def rows_in_box(self, box: Box) -> list[Row]:
        """Cached rows whose grid point lies inside ``box``."""
        with self.lock:
            self._materialize_deferred()
            if self.debug_bruteforce:
                return [
                    row
                    for row, point in zip(self._rows, self._points)
                    if point is not None and box.contains_point(point)
                ]
            rows = self._rows
            points = self._points
            contains = box.contains_point
            return [
                rows[row_id]
                for row_id in sorted(self._point_index.candidates(box))
                if contains(points[row_id])
            ]

    def rows_in_boxes(self, boxes: Sequence[Box]) -> list[Row]:
        """Cached rows inside the union of ``boxes`` (boxes must be disjoint)."""
        if not boxes:
            return []
        with self.lock:
            self._materialize_deferred()
            if self.debug_bruteforce:
                return self._rows_in_boxes_bruteforce(boxes)
            points = self._points
            selected: set[int] = set()
            for box in boxes:
                contains = box.contains_point
                for row_id in self._point_index.candidates(box):
                    if row_id not in selected and contains(points[row_id]):
                        selected.add(row_id)
            rows = self._rows
            return [rows[row_id] for row_id in sorted(selected)]

    def _rows_in_boxes_bruteforce(self, boxes: Sequence[Box]) -> list[Row]:
        """The pre-index scan, kept as the equivalence-test oracle.

        Large box sets (bind-join fan-outs produce one box per binding
        value) are probed through an *anchor dimension* hash so each row
        checks only the handful of boxes sharing its anchor coordinate.
        """
        self._materialize_deferred()
        if len(boxes) <= 16:
            return [
                row
                for row, point in zip(self._rows, self._points)
                if point is not None
                and any(box.contains_point(point) for box in boxes)
            ]
        dimensionality = boxes[0].dimensions
        anchor = max(
            range(dimensionality),
            key=lambda axis: sum(
                1
                for box in boxes
                if box.extents[axis][1] - box.extents[axis][0] == 1
            ),
        )
        buckets: dict[int, list[Box]] = {}
        residual: list[Box] = []
        for box in boxes:
            low, high = box.extents[anchor]
            if high - low == 1:
                buckets.setdefault(low, []).append(box)
            else:
                residual.append(box)
        selected = []
        for row, point in zip(self._rows, self._points):
            if point is None:
                continue
            bucket = buckets.get(point[anchor], ())
            if any(box.contains_point(point) for box in bucket) or any(
                box.contains_point(point) for box in residual
            ):
                selected.append(row)
        return selected

    def columns_in_boxes(
        self, boxes: Sequence[Box]
    ) -> tuple[tuple[tuple[Any, ...], ...], int]:
        """Rows inside the union of ``boxes``, assembled column-wise.

        Returns ``(columns, count)`` — one tuple per schema attribute —
        so the vectorized engine can build a columnar relation without an
        intermediate row-tuple materialization pass.
        """
        rows = self.rows_in_boxes(boxes)
        if not rows:
            return tuple(() for __ in self.schema.names), 0
        return tuple(zip(*rows)), len(rows)

    def count_in_box(self, box: Box) -> int:
        """Exact number of cached rows inside ``box``."""
        return len(self.rows_in_box(box))

    def all_rows(self) -> list[Row]:
        """Every cached row, in insertion order (a copy)."""
        with self.lock:
            self._materialize_deferred()
            return list(self._rows)


class SemanticStore:
    """The buyer-side store of everything ever retrieved from the market."""

    def __init__(
        self,
        policy: ConsistencyPolicy | None = None,
        debug_bruteforce: bool = False,
    ):
        self.policy = policy or ConsistencyPolicy.weak()
        #: Route every probe through the pre-index flat scans (test oracle).
        self.debug_bruteforce = debug_bruteforce
        self._tables: dict[str, TableStore] = {}
        #: Logical clock in weeks; the harness advances it to model time
        #: passing between query batches (only matters under X-week policy).
        self.clock: float = 0.0
        #: Durability hook: called with the new clock value after every
        #: :meth:`advance_clock` (wired by PayLess when a WAL backend is
        #: active, so restarts restore the clock too).
        self.on_clock_advance = None

    def register_table(self, space: BoxSpace, schema: Schema) -> TableStore:
        key = space.table.lower()
        if key in self._tables:
            raise ReproError(f"table {space.table!r} already registered")
        store = TableStore(
            space, schema, debug_bruteforce=self.debug_bruteforce
        )
        self._tables[key] = store
        return store

    def table(self, name: str) -> TableStore:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise ReproError(f"table {name!r} not registered in store") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def epoch_of(self, table: str) -> int:
        """The table's current mutation epoch (see :attr:`TableStore.epoch`)."""
        return self.table(table).epoch

    def advance_clock(self, weeks: float) -> None:
        if weeks < 0:
            raise ReproError("the clock only moves forward")
        self.clock += weeks
        if self.on_clock_advance is not None:
            self.on_clock_advance(self.clock)

    # -- convenience pass-throughs using the store's policy & clock ---------

    def remainder(self, table: str, query: Box) -> list[Box]:
        return self.table(table).remainder(query, self.policy, self.clock)

    def is_covered(self, table: str, query: Box) -> bool:
        return self.table(table).is_covered(query, self.policy, self.clock)

    def effective_covers(self, table: str) -> list[Box]:
        return self.table(table).effective_covers(self.policy, self.clock)

    def record(self, table: str, box: Box, rows: Iterable[Row]) -> int:
        return self.table(table).record(box, rows, self.clock)

    def rows_in_boxes(self, table: str, boxes: Sequence[Box]) -> list[Row]:
        return self.table(table).rows_in_boxes(boxes)

    def columns_in_boxes(
        self, table: str, boxes: Sequence[Box]
    ) -> tuple[tuple[tuple[Any, ...], ...], int]:
        return self.table(table).columns_in_boxes(boxes)
