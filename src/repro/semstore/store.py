"""The semantic store: every REST call and its result, kept forever.

PayLess "stores all the data market access requests and their returned data
in a semantic store" (Figure 3, step 5.3) and deliberately never evicts —
cheap local storage buys freedom from ever re-buying the same tuples.  Per
market table the store tracks

* the union of *covered boxes* (the regions of constraint space whose tuples
  are locally complete), each stamped with the logical week it was fetched,
* the cached rows themselves (deduplicated), and

answers the two questions the optimizer and executor ask: "which part of
this request region is missing?" (remainder decomposition) and "give me the
cached rows inside this region" (result assembly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ReproError
from repro.relational.schema import Schema
from repro.relational.table import Row
from repro.semstore.boxes import (
    Box,
    covers_fully,
    remainder_decomposition,
)
from repro.semstore.consistency import ConsistencyPolicy
from repro.semstore.space import BoxSpace


@dataclass(frozen=True)
class CoveredBox:
    """One stored region: where it is, when it was fetched, what it held."""

    box: Box
    stored_at: float
    row_count: int


class TableStore:
    """Per-table slice of the semantic store."""

    def __init__(self, space: BoxSpace, schema: Schema):
        self.space = space
        self.schema = schema
        self.covered: list[CoveredBox] = []
        self._rows: list[Row] = []
        self._row_set: set[Row] = set()
        #: Grid point of each cached row, computed once at insert time.
        self._points: list[tuple[int, ...] | None] = []

    @property
    def cached_row_count(self) -> int:
        return len(self._rows)

    def record(self, box: Box, rows: Iterable[Row], stored_at: float) -> int:
        """Store a fetched region; returns how many rows were new."""
        new = 0
        count = 0
        for row in rows:
            count += 1
            if row not in self._row_set:
                self._row_set.add(row)
                self._rows.append(row)
                self._points.append(self.space.row_point(row, self.schema))
                new += 1
        # Consolidate the coverage list: a region subsumed by an
        # equally-fresh cover adds nothing, and covers subsumed by this
        # fresher region can be dropped.  Keeps remainder computation
        # linear in the number of *distinct* covered regions.
        for existing in self.covered:
            if existing.stored_at >= stored_at and existing.box.contains_box(box):
                return new
        self.covered = [
            existing
            for existing in self.covered
            if not (
                existing.stored_at <= stored_at
                and box.contains_box(existing.box)
            )
        ]
        self.covered.append(CoveredBox(box=box, stored_at=stored_at, row_count=count))
        return new

    def effective_covers(
        self, policy: ConsistencyPolicy, now: float
    ) -> list[Box]:
        """Covered boxes still reusable under ``policy`` at clock ``now``."""
        if not policy.rewriting_enabled:
            return []
        return [
            covered.box
            for covered in self.covered
            if policy.is_fresh(covered.stored_at, now)
        ]

    def remainder(
        self, query: Box, policy: ConsistencyPolicy, now: float
    ) -> list[Box]:
        """Elementary boxes of the part of ``query`` that must be fetched."""
        return remainder_decomposition(
            query, self.effective_covers(policy, now)
        )

    def is_covered(
        self, query: Box, policy: ConsistencyPolicy, now: float
    ) -> bool:
        return covers_fully(query, self.effective_covers(policy, now))

    def rows_in_box(self, box: Box) -> list[Row]:
        """Cached rows whose grid point lies inside ``box``."""
        return [
            row
            for row, point in zip(self._rows, self._points)
            if point is not None and box.contains_point(point)
        ]

    def rows_in_boxes(self, boxes: Sequence[Box]) -> list[Row]:
        """Cached rows inside the union of ``boxes`` (boxes must be disjoint).

        Large box sets (bind-join fan-outs produce one box per binding
        value) are probed through an *anchor dimension* index: boxes that
        are single-valued on the anchor go into a hash bucket, so each row
        checks only the handful of boxes sharing its anchor coordinate.
        """
        if not boxes:
            return []
        if len(boxes) <= 16:
            return [
                row
                for row, point in zip(self._rows, self._points)
                if point is not None
                and any(box.contains_point(point) for box in boxes)
            ]
        dimensionality = boxes[0].dimensions
        anchor = max(
            range(dimensionality),
            key=lambda axis: sum(
                1
                for box in boxes
                if box.extents[axis][1] - box.extents[axis][0] == 1
            ),
        )
        buckets: dict[int, list[Box]] = {}
        residual: list[Box] = []
        for box in boxes:
            low, high = box.extents[anchor]
            if high - low == 1:
                buckets.setdefault(low, []).append(box)
            else:
                residual.append(box)
        selected = []
        for row, point in zip(self._rows, self._points):
            if point is None:
                continue
            bucket = buckets.get(point[anchor], ())
            if any(box.contains_point(point) for box in bucket) or any(
                box.contains_point(point) for box in residual
            ):
                selected.append(row)
        return selected

    def count_in_box(self, box: Box) -> int:
        """Exact number of cached rows inside ``box``."""
        return len(self.rows_in_box(box))


class SemanticStore:
    """The buyer-side store of everything ever retrieved from the market."""

    def __init__(self, policy: ConsistencyPolicy | None = None):
        self.policy = policy or ConsistencyPolicy.weak()
        self._tables: dict[str, TableStore] = {}
        #: Logical clock in weeks; the harness advances it to model time
        #: passing between query batches (only matters under X-week policy).
        self.clock: float = 0.0

    def register_table(self, space: BoxSpace, schema: Schema) -> TableStore:
        key = space.table.lower()
        if key in self._tables:
            raise ReproError(f"table {space.table!r} already registered")
        store = TableStore(space, schema)
        self._tables[key] = store
        return store

    def table(self, name: str) -> TableStore:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise ReproError(f"table {name!r} not registered in store") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def advance_clock(self, weeks: float) -> None:
        if weeks < 0:
            raise ReproError("the clock only moves forward")
        self.clock += weeks

    # -- convenience pass-throughs using the store's policy & clock ---------

    def remainder(self, table: str, query: Box) -> list[Box]:
        return self.table(table).remainder(query, self.policy, self.clock)

    def is_covered(self, table: str, query: Box) -> bool:
        return self.table(table).is_covered(query, self.policy, self.clock)

    def effective_covers(self, table: str) -> list[Box]:
        return self.table(table).effective_covers(self.policy, self.clock)

    def record(self, table: str, box: Box, rows: Iterable[Row]) -> int:
        return self.table(table).record(box, rows, self.clock)

    def rows_in_boxes(self, table: str, boxes: Sequence[Box]) -> list[Row]:
        return self.table(table).rows_in_boxes(boxes)
