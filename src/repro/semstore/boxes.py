"""d-dimensional box algebra over integer grids.

Everything the semantic-rewriting machinery of the paper does — coverage,
remainder computation (Figure 6/7), elementary-box decomposition, bounding
boxes (Algorithm 1) — happens in a per-table *box space*:

* every constrainable attribute of a market table is one dimension;
* numeric (INT/DATE) attributes map to a half-open integer axis
  ``[domain_min, domain_max + 1)``;
* categorical attributes are enumerated: the k domain values map to axis
  positions ``0..k`` in a stable sort order (this is exactly how Figure 8
  draws a categorical axis).

With that mapping every region is an axis-aligned integer :class:`Box`, and
subtraction/decomposition are exact.  Decomposition of ``Q − ⋃Vᵢ`` uses the
classic split-by-box sweep (each subtraction splits a piece into at most
``2d`` disjoint slabs) followed by a greedy merge pass; any disjoint
decomposition is valid input to Algorithm 1 and the merge keeps separator
sets small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import ReproError

Extent = tuple[int, int]  # half-open [low, high)


class BoxError(ReproError):
    """A box operation received incompatible or degenerate input."""


@dataclass(frozen=True, slots=True)
class Box:
    """An axis-aligned d-dimensional box with half-open integer extents."""

    extents: tuple[Extent, ...]

    def __post_init__(self) -> None:
        for low, high in self.extents:
            if low >= high:
                raise BoxError(f"degenerate extent [{low}, {high})")

    @classmethod
    def unchecked(cls, extents: tuple[Extent, ...]) -> "Box":
        """Trusted constructor for internal hot paths.

        Skips ``__post_init__`` validation; callers must guarantee every
        extent is non-degenerate (true whenever the extents are derived
        from already-validated boxes — intersection, subtraction, merge).
        """
        box = object.__new__(cls)
        object.__setattr__(box, "extents", extents)
        return box

    @property
    def dimensions(self) -> int:
        return len(self.extents)

    def volume(self) -> int:
        """Number of grid cells inside (not tuples — tuples come from stats)."""
        product = 1
        for low, high in self.extents:
            product *= high - low
        return product

    def contains_box(self, other: "Box") -> bool:
        self._check_compatible(other)
        return all(
            mine[0] <= theirs[0] and theirs[1] <= mine[1]
            for mine, theirs in zip(self.extents, other.extents)
        )

    def contains_point(self, point: Sequence[int]) -> bool:
        extents = self.extents
        if len(point) != len(extents):
            raise BoxError("point dimensionality mismatch")
        for (low, high), value in zip(extents, point):
            if value < low or value >= high:
                return False
        return True

    def intersect(self, other: "Box") -> "Box | None":
        """The overlap box, or ``None`` when disjoint."""
        mine, theirs = self.extents, other.extents
        if len(mine) != len(theirs):
            self._check_compatible(other)
        extents: list[Extent] = []
        append = extents.append
        for (low_a, high_a), (low_b, high_b) in zip(mine, theirs):
            low = low_a if low_a >= low_b else low_b
            high = high_a if high_a <= high_b else high_b
            if low >= high:
                return None
            append((low, high))
        return Box.unchecked(tuple(extents))

    def overlaps(self, other: "Box") -> bool:
        return self.intersect(other) is not None

    def subtract(self, other: "Box") -> list["Box"]:
        """``self − other`` as at most ``2d`` disjoint boxes."""
        overlap = self.intersect(other)
        if overlap is None:
            return [self]
        unchecked = Box.unchecked
        pieces: list[Box] = []
        remaining = list(self.extents)
        overlap_extents = overlap.extents
        for axis in range(len(remaining)):
            low, high = remaining[axis]
            cut_low, cut_high = overlap_extents[axis]
            if low < cut_low:
                extents = list(remaining)
                extents[axis] = (low, cut_low)
                pieces.append(unchecked(tuple(extents)))
            if cut_high < high:
                extents = list(remaining)
                extents[axis] = (cut_high, high)
                pieces.append(unchecked(tuple(extents)))
            remaining[axis] = (cut_low, cut_high)
        return pieces

    def _check_compatible(self, other: "Box") -> None:
        if self.dimensions != other.dimensions:
            raise BoxError(
                f"dimensionality mismatch: {self.dimensions} vs {other.dimensions}"
            )

    def __repr__(self) -> str:
        inner = " x ".join(f"[{low},{high})" for low, high in self.extents)
        return f"Box({inner})"


#: Fragment guard for high-dimensional subtraction: once a decomposition
#: exceeds this many pieces, remaining covers are ignored.  The result then
#: *over-approximates* the true remainder — always sound for rewriting (at
#: worst some already-stored tuples are re-bought), never incorrect.
DEFAULT_PIECE_CAP = 512

#: At most this many (largest) covers are subtracted per remainder
#: computation; ignoring the tail is the same sound over-approximation.
DEFAULT_COVER_CAP = 128


def subtract_all(
    base: Box, covers: Iterable[Box], piece_cap: int | None = None
) -> list[Box]:
    """``base − ⋃covers`` as a list of disjoint boxes (possibly empty).

    Covers are applied largest-volume-first (big covers annihilate pieces
    early, which keeps fragmentation down).  ``piece_cap`` bounds the
    intermediate piece count; see :data:`DEFAULT_PIECE_CAP`.
    """
    ordered = sorted(covers, key=lambda cover: cover.volume(), reverse=True)
    cap = DEFAULT_PIECE_CAP if piece_cap is None else piece_cap
    pieces = [base]
    for cover in ordered:
        if len(pieces) > cap:
            break
        next_pieces: list[Box] = []
        for piece in pieces:
            next_pieces.extend(piece.subtract(cover))
        pieces = next_pieces
        if not pieces:
            break
    return pieces


#: Above this many boxes the quadratic merge pass is skipped — Algorithm 1
#: still works on the unmerged decomposition, it just sees more elements.
MERGE_INPUT_CAP = 512


def merge_adjacent(boxes: list[Box]) -> list[Box]:
    """Greedily merge boxes that differ in exactly one dimension and touch.

    Runs passes until a fixpoint.  The result is still disjoint and covers
    the same region; it just has fewer, fatter boxes — which keeps
    Algorithm 1's separator sets small.
    """
    if len(boxes) > MERGE_INPUT_CAP:
        return list(boxes)
    current = list(boxes)
    changed = True
    while changed:
        changed = False
        merged: list[Box] = []
        used = [False] * len(current)
        for i, box in enumerate(current):
            if used[i]:
                continue
            accumulated = box
            for j in range(i + 1, len(current)):
                if used[j]:
                    continue
                candidate = _try_merge(accumulated, current[j])
                if candidate is not None:
                    accumulated = candidate
                    used[j] = True
                    changed = True
            merged.append(accumulated)
            used[i] = True
        current = merged
    return current


def _try_merge(a: Box, b: Box) -> Box | None:
    """Merge two boxes into one iff their union is exactly a box."""
    if a.dimensions != b.dimensions:
        raise BoxError("dimensionality mismatch in merge")
    differing = None
    for axis in range(a.dimensions):
        if a.extents[axis] != b.extents[axis]:
            if differing is not None:
                return None
            differing = axis
    if differing is None:
        # Identical boxes (shouldn't happen with disjoint input): keep one.
        return a
    (low_a, high_a) = a.extents[differing]
    (low_b, high_b) = b.extents[differing]
    if high_a == low_b:
        joined = (low_a, high_b)
    elif high_b == low_a:
        joined = (low_b, high_a)
    else:
        return None
    extents = list(a.extents)
    extents[differing] = joined
    return Box.unchecked(tuple(extents))


def remainder_decomposition(
    query: Box, covers: Iterable[Box], cover_cap: int = DEFAULT_COVER_CAP
) -> list[Box]:
    """Elementary boxes of ``query − ⋃covers`` (disjoint, merged).

    This is the decomposition of the missing-data space V̄ (Figure 7b/c)
    that Algorithm 1 consumes.  Covers are clipped to the query box,
    deduplicated, and — when very many distinct covers overlap the query —
    only the ``cover_cap`` largest are subtracted (a sound
    over-approximation; see :func:`subtract_all`).
    """
    relevant: dict[tuple, Box] = {}
    for cover in covers:
        clipped = query.intersect(cover)
        if clipped is None:
            continue
        if clipped.extents == query.extents:
            return []  # one cover swallows the whole query box
        relevant.setdefault(clipped.extents, clipped)
    clipped_covers = list(relevant.values())
    if len(clipped_covers) > cover_cap:
        clipped_covers.sort(key=lambda box: box.volume(), reverse=True)
        clipped_covers = clipped_covers[:cover_cap]
    return merge_adjacent(subtract_all(query, clipped_covers))


def covers_fully(query: Box, covers: Iterable[Box]) -> bool:
    """Whether ``query`` is entirely inside the union of ``covers``."""
    return not subtract_all(query, covers)


def union_volume(boxes: Sequence[Box]) -> int:
    """Grid volume of a union of (possibly overlapping) boxes."""
    disjoint: list[Box] = []
    for box in boxes:
        pieces = [box]
        for existing in disjoint:
            next_pieces: list[Box] = []
            for piece in pieces:
                next_pieces.extend(piece.subtract(existing))
            pieces = next_pieces
            if not pieces:
                break
        disjoint.extend(pieces)
    return sum(piece.volume() for piece in disjoint)


def bounding_box(boxes: Sequence[Box]) -> Box:
    """The minimum box enclosing all ``boxes``."""
    if not boxes:
        raise BoxError("bounding box of zero boxes")
    dimensions = boxes[0].dimensions
    extents: list[Extent] = []
    for axis in range(dimensions):
        low = min(box.extents[axis][0] for box in boxes)
        high = max(box.extents[axis][1] for box in boxes)
        extents.append((low, high))
    return Box(tuple(extents))
