"""Box spaces: the bridge between SQL constraints and integer boxes.

A :class:`BoxSpace` is built per market table from its binding pattern and
published basic statistics.  Each constrainable (bound or free) attribute
becomes one dimension; numeric attributes keep their integer axis, while
categorical attributes are enumerated into ``0..k`` positions.  The space
converts in both directions:

* query constraints → the (list of) boxes they request — point-set
  constraints fan out into one box per value, the decomposed-disjunction
  case of the paper;
* a box → the REST constraints that fetch exactly that region — which is
  only possible when categorical extents span one value or the whole axis,
  the Figure 8 validity rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import MarketError, StatisticsError
from repro.market.binding import AccessMode, BindingPattern
from repro.market.dataset import BasicStatistics
from repro.relational.query import AttributeConstraint
from repro.relational.schema import Schema
from repro.relational.table import Row
from repro.relational.types import AttributeType
from repro.semstore.boxes import Box, Extent


@dataclass(frozen=True)
class Dimension:
    """One axis of a table's box space."""

    attribute: str
    is_categorical: bool
    low: int
    high: int  # half-open upper bound
    #: For categorical dimensions: domain values in axis order.
    values: tuple[Any, ...] = ()
    #: Whether the binding pattern marks this attribute BOUND: every call
    #: must constrain it.  A bound *numeric* attribute may still span its
    #: whole domain — by passing the full range explicitly (the paper allows
    #: binding "a single value or a range").  A bound *categorical*
    #: attribute must always be a single value.
    is_bound: bool = False

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise StatisticsError(
                f"dimension {self.attribute!r} has empty axis "
                f"[{self.low}, {self.high})"
            )

    @property
    def full_extent(self) -> Extent:
        return (self.low, self.high)

    def index_of(self, value: Any) -> int | None:
        """Axis position of ``value``; None when outside the domain."""
        if self.is_categorical:
            try:
                return self._value_index[value]
            except KeyError:
                return None
        if not isinstance(value, int) or isinstance(value, bool):
            return None
        if self.low <= value < self.high:
            return value
        return None

    def value_at(self, position: int) -> Any:
        """Domain value at an axis position (inverse of :meth:`index_of`)."""
        if self.is_categorical:
            return self.values[position - self.low]
        return position

    @property
    def _value_index(self) -> dict[Any, int]:
        cached = getattr(self, "_value_index_cache", None)
        if cached is None:
            cached = {value: i for i, value in enumerate(self.values)}
            object.__setattr__(self, "_value_index_cache", cached)
        return cached


class BoxSpace:
    """The d-dimensional constraint space of one market table."""

    def __init__(self, table: str, dimensions: Sequence[Dimension]):
        self.table = table
        self.dimensions = tuple(dimensions)
        self._by_name = {d.attribute.lower(): i for i, d in enumerate(self.dimensions)}

    @property
    def dimensionality(self) -> int:
        return len(self.dimensions)

    def dimension_index(self, attribute: str) -> int | None:
        return self._by_name.get(attribute.lower())

    def has_dimension(self, attribute: str) -> bool:
        return attribute.lower() in self._by_name

    @property
    def full_box(self) -> Box:
        """The box covering the entire table."""
        return Box(tuple(d.full_extent for d in self.dimensions))

    # -- constraints → boxes ---------------------------------------------------

    def boxes_for_constraints(
        self, constraints: Sequence[AttributeConstraint]
    ) -> list[Box]:
        """The boxes requested by (the pushable part of) ``constraints``.

        Constraints on attributes that are not dimensions are ignored here —
        the caller fetches the containing region and filters locally.
        Point-*set* constraints fan out multiplicatively into one box per
        value.  An empty list means the request region is empty (some point
        lies outside the published domain), so nothing needs fetching.
        """
        per_dimension: list[list[Extent]] = [
            [d.full_extent] for d in self.dimensions
        ]
        for constraint in constraints:
            index = self.dimension_index(constraint.attribute)
            if index is None:
                continue
            dimension = self.dimensions[index]
            extents = self._extents_for(dimension, constraint)
            if not extents:
                return []
            # Intersect with whatever this dimension already has.
            combined: list[Extent] = []
            for low_a, high_a in per_dimension[index]:
                for low_b, high_b in extents:
                    low, high = max(low_a, low_b), min(high_a, high_b)
                    if low < high:
                        combined.append((low, high))
            if not combined:
                return []
            per_dimension[index] = combined

        boxes = [Box(())]
        for extents in per_dimension:
            boxes = [
                Box(box.extents + (extent,))
                for box in boxes
                for extent in extents
            ]
        return boxes

    @staticmethod
    def _extents_for(
        dimension: Dimension, constraint: AttributeConstraint
    ) -> list[Extent]:
        if constraint.is_point:
            position = dimension.index_of(constraint.value)
            if position is None:
                return []
            return [(position, position + 1)]
        if constraint.is_set:
            extents = []
            for value in sorted(constraint.values, key=repr):
                position = dimension.index_of(value)
                if position is not None:
                    extents.append((position, position + 1))
            return extents
        if dimension.is_categorical:
            raise MarketError(
                f"range constraint on categorical dimension "
                f"{dimension.attribute!r}"
            )
        low = dimension.low if constraint.low is None else max(
            dimension.low, constraint.low
        )
        high = dimension.high if constraint.high is None else min(
            dimension.high, constraint.high
        )
        if low >= high:
            return []
        return [(low, high)]

    # -- boxes → constraints ---------------------------------------------------

    def constraints_for_box(self, box: Box) -> tuple[AttributeConstraint, ...]:
        """REST constraints that fetch exactly ``box``.

        Raises :class:`MarketError` when the box is not expressible in one
        call (a categorical extent spanning more than one value but less
        than the whole axis — the invalid ``B1`` of Figure 8).
        """
        if box.dimensions != self.dimensionality:
            raise MarketError("box does not belong to this space")
        constraints: list[AttributeConstraint] = []
        for dimension, (low, high) in zip(self.dimensions, box.extents):
            if (low, high) == dimension.full_extent:
                if dimension.is_bound:
                    if dimension.is_categorical:
                        raise MarketError(
                            f"bound categorical dimension "
                            f"{dimension.attribute!r} cannot span its whole "
                            "domain in one call"
                        )
                    # Bound numeric attribute: bind it with the explicit
                    # full-domain range.
                    constraints.append(
                        AttributeConstraint(dimension.attribute, low=low, high=high)
                    )
                continue
            if dimension.is_categorical:
                if high - low != 1:
                    raise MarketError(
                        f"categorical dimension {dimension.attribute!r} "
                        "cannot span a partial range in one call"
                    )
                constraints.append(
                    AttributeConstraint(
                        dimension.attribute, value=dimension.value_at(low)
                    )
                )
            elif high - low == 1:
                constraints.append(
                    AttributeConstraint(dimension.attribute, value=low)
                )
            else:
                constraints.append(
                    AttributeConstraint(dimension.attribute, low=low, high=high)
                )
        return tuple(constraints)

    def expressible(self, box: Box) -> bool:
        """Whether ``box`` can be fetched with a single REST call."""
        for dimension, (low, high) in zip(self.dimensions, box.extents):
            if not dimension.is_categorical:
                continue
            if high - low == 1:
                continue
            if (low, high) == dimension.full_extent and not dimension.is_bound:
                continue
            return False
        return True

    # -- rows → grid points ------------------------------------------------------

    def row_point(self, row: Row, schema: Schema) -> tuple[int, ...] | None:
        """Grid coordinates of a row, or None if any value is off-domain."""
        point: list[int] = []
        for dimension in self.dimensions:
            value = row[schema.position(dimension.attribute)]
            position = dimension.index_of(value)
            if position is None:
                return None
            point.append(position)
        return tuple(point)

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_table(
        cls,
        table: str,
        schema: Schema,
        pattern: BindingPattern,
        statistics: BasicStatistics,
    ) -> "BoxSpace":
        """Build the space from a table's pattern + published statistics."""
        dimensions: list[Dimension] = []
        for name in pattern.constrainable_attributes:
            attribute = schema.attribute(name)
            domain = statistics.domain_of(name)
            if domain is None:
                raise StatisticsError(
                    f"{table}: no published domain for constrainable "
                    f"attribute {name!r}"
                )
            if attribute.type is AttributeType.FLOAT:
                # Float axes cannot be gridded exactly; the planner never
                # pushes float constraints to the market (they stay residual
                # local filters), so a float attribute contributes no
                # dimension and is effectively output-only for coverage.
                continue
            if attribute.type in (AttributeType.INT, AttributeType.DATE):
                if domain.low is None or domain.high is None:
                    raise StatisticsError(
                        f"{table}: numeric attribute {name!r} needs a "
                        "bounded domain"
                    )
                dimensions.append(
                    Dimension(
                        attribute=attribute.name,
                        is_categorical=False,
                        low=int(domain.low),
                        high=int(domain.high) + 1,
                        is_bound=pattern.mode_of(name) is AccessMode.BOUND,
                    )
                )
            else:
                if domain.values is None:
                    raise StatisticsError(
                        f"{table}: categorical attribute {name!r} needs an "
                        "enumerated domain"
                    )
                values = tuple(sorted(domain.values, key=repr))
                dimensions.append(
                    Dimension(
                        attribute=attribute.name,
                        is_categorical=True,
                        low=0,
                        high=len(values),
                        values=values,
                        is_bound=pattern.mode_of(name) is AccessMode.BOUND,
                    )
                )
        return cls(table=table, dimensions=dimensions)
