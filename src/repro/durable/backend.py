"""The durable state backend: intents, purchases, snapshots, recovery.

Crash-safety for *money* hinges on one protocol::

    intent (WAL)  →  market call bills  →  purchase (WAL)  →  group commit

Before the transport lets a call bill, it journals a durable **intent**
record carrying the call's idempotency key and enough of the request to
re-issue it.  Whatever byte the process dies at afterwards, recovery can
reconcile:

* crash before the intent is durable — the call was never issued, nothing
  was billed, nothing to do;
* crash after the intent but before the purchase record — the market may
  or may not have billed the key; recovery *rolls the intent forward* by
  re-issuing the request with the **same** key.  If the market billed it,
  the idempotency cache replays the response for free and the orphaned
  charge is adopted; if it never billed, the purchase completes now.
  Either way the key is billed exactly once;
* crash after the purchase record — replay re-records the rows and the
  bill; the intent is resolved by its purchase record and is not
  re-issued.

WAL appends are unbuffered, so every record is OS-visible the moment it
is written: a buyer-process kill at any byte is always recoverable.  The
fsync policy only decides the *power-loss* window — "commit" (default)
fsyncs once per table access at the post-purchase group commit, "always"
additionally fsyncs each intent before the market may bill it.

Purchases, ISOMER feedback, the logical clock, per-query totals and the
three billing buckets (spent / wasted-on-failures / coalesced-savings)
are all WAL records riding those group commits.  Periodically — and on clean shutdown — the backend writes a
compacted **snapshot** (temp file + fsync + atomic rename) and starts a
fresh WAL segment, so cold restart cost is O(live state), not O(history).
"""

from __future__ import annotations

import json
import os
import pickle
import re
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.durable.records import (
    box_from_json,
    box_to_json,
    cover_from_json,
    request_from_json,
    request_to_json,
    rows_from_json,
    rows_to_json,
)
from repro.durable.wal import FSYNC_POLICIES, WriteAheadLog, iter_records
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.executor import ExecutionResult
    from repro.core.payless import PayLess
    from repro.market.rest import RestRequest

#: Snapshot format version (shares the lineage of the legacy JSON blob:
#: v1 = repro.core.persistence's original format, v2 adds the billing
#: buckets, pending intents, and precomputed grid points).
SNAPSHOT_VERSION = 2

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.json$")
_SIDECAR_RE = re.compile(r"^snapshot-(\d{8})\.tables\.pkl$")
_SEGMENT_RE = re.compile(r"^wal-(\d{8})\.log$")


@dataclass(frozen=True)
class DurabilityConfig:
    """Where and how hard the installation persists its state."""

    #: Directory holding the WAL segments and snapshots (created on use).
    state_dir: str | Path
    #: fsync policy: "always" (per append — power-loss-proof even for an
    #: in-flight access), "commit" (one fsync per access, at the post-
    #: purchase group commit — the default; a buyer-process crash can
    #: never lose money, power loss can expose at most the one in-flight
    #: access), or "os" (never fsync; durable against process kill only).
    fsync: str = "commit"
    #: WAL records between automatic compacting snapshots (checked at
    #: query boundaries, where no table lock is held).
    compact_after: int = 4096
    #: Write a compacting snapshot on clean :meth:`PayLess.close`.
    snapshot_on_close: bool = True
    #: Roll pending intents forward during :meth:`recover` (re-issue
    #: with the same idempotency key).  Disable only for inspecting a
    #: crashed state dir — unresolved intents are a billing hazard.
    resolve_intents: bool = True

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise ReproError(
                f"unknown fsync policy {self.fsync!r}; "
                f"pick one of {FSYNC_POLICIES}"
            )
        if self.compact_after < 1:
            raise ReproError("compact_after must be >= 1")


@dataclass
class DurableBill:
    """The ledger buckets as the WAL knows them — all three of them.

    Mirrors :class:`~repro.market.billing.BillingLedger`'s split (spent /
    wasted-on-failures / coalesced-savings) so a restart resumes the full
    money picture, not just the spent series.
    """

    spent_calls: int = 0
    spent_transactions: int = 0
    spent_price: float = 0.0
    wasted_calls: int = 0
    wasted_transactions: int = 0
    wasted_price: float = 0.0
    coalesced_calls: int = 0
    coalesced_transactions: int = 0
    coalesced_price: float = 0.0

    def to_json(self) -> dict[str, Any]:
        return dict(self.__dict__)

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "DurableBill":
        bill = cls()
        for name in bill.__dict__:
            if name in data:
                setattr(bill, name, data[name])
        return bill


@dataclass
class RecoveryReport:
    """What :meth:`DurableStateBackend.recover` found and did."""

    snapshot_loaded: bool = False
    records_replayed: int = 0
    purchases_replayed: int = 0
    intents_resolved: int = 0
    intents_aborted: int = 0
    torn_bytes_truncated: int = 0
    clock: float = 0.0
    tables: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        source = "snapshot+wal" if self.snapshot_loaded else "wal"
        return (
            f"recovered from {source}: {self.records_replayed} records, "
            f"{self.purchases_replayed} purchases, "
            f"{self.intents_resolved} intents rolled forward"
        )


class DurableStateBackend:
    """One installation's durable state: WAL segments + snapshots.

    Single-owner: exactly one live :class:`~repro.core.payless.PayLess`
    may append to a state directory at a time (a crashed predecessor's
    abandoned handle is fine — it never writes again).
    """

    def __init__(self, config: DurabilityConfig | str | Path):
        if not isinstance(config, DurabilityConfig):
            config = DurabilityConfig(state_dir=config)
        self.config = config
        self.state_dir = Path(config.state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self.bill = DurableBill()
        self._payless: "PayLess | None" = None
        #: Intent records awaiting their purchase/waste/abort resolution.
        self._pending: dict[str, dict] = {}
        self._intent_seq = 0
        #: Distinguishes this state dir's idempotency keys from any other
        #: installation's against the same market; derived from the path
        #: so it survives restarts (recovery must replay the same keys).
        self._nonce = zlib.crc32(str(self.state_dir.resolve()).encode()) & 0xFFFF
        self._clock = 0.0
        self._records_since_snapshot = 0
        self._recovered = False
        self._cache_dropped = False
        self._torn_bytes = 0
        self._scan()

    # -- startup scan ----------------------------------------------------------

    def _scan(self) -> None:
        """Read the state dir: pick the snapshot, stage WAL replay, open
        the live segment (truncating any torn tail)."""
        for leftover in self.state_dir.glob("*.tmp"):
            leftover.unlink()
        snapshots = sorted(
            (
                (int(match.group(1)), path)
                for path in self.state_dir.iterdir()
                if (match := _SNAPSHOT_RE.match(path.name))
            ),
            reverse=True,
        )
        self._snapshot_state: dict | None = None
        #: Bulk table payload from the pickled sidecar (None for legacy
        #: snapshots that inline their tables in the JSON).
        self._snapshot_tables: dict | None = None
        snap_seq = 0
        for seq, path in snapshots:
            try:
                state = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if state.get("version") != SNAPSHOT_VERSION:
                continue
            if state.get("tables_in_sidecar"):
                sidecar = self.state_dir / f"snapshot-{seq:08d}.tables.pkl"
                try:
                    bulk = pickle.loads(sidecar.read_bytes())
                except (OSError, pickle.UnpicklingError, EOFError):
                    continue  # torn sidecar: fall back to an older snapshot
                self._snapshot_tables = bulk
            self._snapshot_state = state
            snap_seq = seq
            break
        segments = sorted(
            (
                (int(match.group(1)), path)
                for path in self.state_dir.iterdir()
                if (match := _SEGMENT_RE.match(path.name))
            )
        )
        self._replay_records: list[dict] = []
        live: list[tuple[int, Path]] = []
        for seq, path in segments:
            if seq <= snap_seq:
                path.unlink()  # superseded by the snapshot; crash leftover
            else:
                live.append((seq, path))
        for index, (seq, path) in enumerate(live):
            if index == len(live) - 1:
                before = path.stat().st_size
                records, valid = WriteAheadLog.truncate_torn_tail(path)
                self._torn_bytes = before - valid
            else:
                records, __ = iter_records(path.read_bytes())
            self._replay_records.extend(records)
        if self._snapshot_state is not None:
            self._intent_seq = self._snapshot_state.get("intent_seq", 0)
            self.bill = DurableBill.from_json(
                self._snapshot_state.get("bill", {})
            )
            self._clock = self._snapshot_state.get("clock", 0.0)
            for intent in self._snapshot_state.get("pending_intents", []):
                self._pending[intent["k"]] = intent
        for record in self._replay_records:
            self._track_metadata(record)
        self._records_since_snapshot = len(self._replay_records)
        self._wal_seq = live[-1][0] if live else snap_seq + 1
        self.wal = WriteAheadLog(
            self._segment_path(self._wal_seq), fsync=self.config.fsync
        )

    def _segment_path(self, seq: int) -> Path:
        return self.state_dir / f"wal-{seq:08d}.log"

    def _track_metadata(self, record: dict) -> None:
        """Fold one WAL record into the bill / pending-intent / clock
        metadata (the part of replay that does not need a store)."""
        kind = record["t"]
        if kind == "in":
            self._pending[record["k"]] = record
            sequence = int(record["k"].rsplit(".", 1)[1])
            self._intent_seq = max(self._intent_seq, sequence + 1)
        elif kind == "buy":
            self._apply_bill_purchase(record)
            if record.get("k"):
                self._pending.pop(record["k"], None)
        elif kind == "waste":
            self.bill.wasted_calls += 1
            self.bill.wasted_transactions += record["tx"]
            self.bill.wasted_price += record["p"]
            self._pending.pop(record["k"], None)
        elif kind == "abort":
            self._pending.pop(record["k"], None)
        elif kind == "clk":
            self._clock = record["c"]

    def _apply_bill_purchase(self, record: dict) -> None:
        if record.get("co"):
            self.bill.coalesced_calls += 1
            self.bill.coalesced_transactions += record.get("stx", 0)
            self.bill.coalesced_price += record.get("sp", 0.0)
        else:
            self.bill.spent_calls += 1
            self.bill.spent_transactions += record["tx"]
            self.bill.spent_price += record["p"]

    # -- wiring ----------------------------------------------------------------

    def attach(self, payless: "PayLess") -> None:
        """Back-reference for snapshots and recovery (set by PayLess)."""
        self._payless = payless

    @property
    def pending_intents(self) -> list[dict]:
        """Unresolved intent records (WAL order) — mainly for tests."""
        with self._lock:
            return list(self._pending.values())

    @property
    def recovered(self) -> bool:
        return self._recovered

    def _first_append(self) -> None:
        """Drop the staged recovery state once live appends begin.

        After this, :meth:`recover` would silently merge old state into a
        store that already diverged — so it raises instead.
        """
        if not self._cache_dropped:
            self._cache_dropped = True
            self._snapshot_state = None
            self._replay_records = []

    # -- the write path --------------------------------------------------------

    def begin_intent(self, request: "RestRequest") -> str:
        """Journal a durable intent; returns the call's idempotency key.

        The unbuffered append is OS-visible before the market call, so a
        buyer-process crash can never bill a key the buyer forgot.  Under
        the "always" policy the intent is also fsynced, extending that
        guarantee to power loss; "commit" accepts at most one in-flight
        access of power-loss exposure in exchange for a single fsync per
        access (at the post-purchase group commit).
        """
        with self._lock:
            self._first_append()
            key = f"i{self._nonce:04x}.{self._intent_seq}"
            self._intent_seq += 1
            record = {
                "t": "in",
                "k": key,
                "u": request.url(),
                "table": request.table.lower(),
                "req": request_to_json(request),
                "at": self._clock,
            }
            self.wal.append(record)
            self._pending[key] = record
            self._records_since_snapshot += 1
            return key

    def log_purchase(
        self,
        table: str,
        box,
        rows,
        count: int,
        stored_at: float,
        url: str,
        key: str | None,
        transactions: int,
        price: float,
        coalesced: bool = False,
        saved_transactions: int = 0,
        saved_price: float = 0.0,
    ) -> None:
        """Journal one recorded fetch (called under the table lock, right
        after ``store.record`` + histogram feedback — the PR 6 record→
        release window).  Durable at the access's group commit."""
        record: dict[str, Any] = {
            "t": "buy",
            "table": table.lower(),
            "box": box_to_json(box),
            "rows": rows_to_json(rows),
            "n": count,
            "at": stored_at,
            "u": url,
            "k": key,
            "tx": transactions,
            "p": price,
        }
        if coalesced:
            record["co"] = True
            record["stx"] = saved_transactions
            record["sp"] = saved_price
        with self._lock:
            self._first_append()
            self.wal.append(record)
            self._apply_bill_purchase(record)
            if key:
                self._pending.pop(key, None)
            self._records_since_snapshot += 1

    def log_wasted(self, key: str, transactions: int, price: float) -> None:
        """A billed call's data never arrived: resolve its intent into the
        wasted bucket (the money is gone, but accounted)."""
        with self._lock:
            self._first_append()
            self.wal.append(
                {"t": "waste", "k": key, "tx": transactions, "p": price}
            )
            self.bill.wasted_calls += 1
            self.bill.wasted_transactions += transactions
            self.bill.wasted_price += price
            self._pending.pop(key, None)
            self._records_since_snapshot += 1

    def log_abort(self, key: str) -> None:
        """An intent whose call never billed: resolve it so recovery does
        not roll it forward.  No-op if already resolved."""
        with self._lock:
            if key not in self._pending:
                return
            self.wal.append({"t": "abort", "k": key})
            self._pending.pop(key, None)
            self._records_since_snapshot += 1

    def log_clock(self, clock: float) -> None:
        """The store's logical clock advanced (wired to
        :attr:`SemanticStore.on_clock_advance`)."""
        with self._lock:
            self._first_append()
            # Not a money record: losing a tail clk to power loss only
            # leaves the clock slightly stale (replayed purchases carry
            # their own stored_at), so it rides the next group commit.
            self.wal.append({"t": "clk", "c": clock})
            self._clock = clock
            self._records_since_snapshot += 1

    def log_query(self, execution: "ExecutionResult") -> None:
        """Journal one finished query's totals delta.

        Bookkeeping, not money: the purchases themselves were fsynced by
        the access-level group commit, so the "q" record does not force
        its own fsync — it becomes durable with the next money commit (or
        close).  A power cut can at worst under-count one query's totals;
        it can never lose a billed purchase.
        """
        record = {
            "t": "q",
            "tx": execution.transactions,
            "p": execution.price,
            "calls": execution.calls,
            "wtx": execution.wasted_transactions,
            "wp": execution.wasted_price,
            "cf": execution.coalesced_fetches,
            "ctx": execution.coalesced_savings_transactions,
            "cp": execution.coalesced_savings_price,
        }
        with self._lock:
            self._first_append()
            self.wal.append(record)
            self._records_since_snapshot += 1

    def commit(self) -> None:
        """Group commit: fsync everything appended since the last one."""
        with self._lock:
            self.wal.commit()

    def maybe_compact(self) -> None:
        """Snapshot when the WAL grew past ``compact_after`` records.

        Called at query boundaries only — snapshotting takes every table
        lock briefly, so it must never run inside one.
        """
        with self._lock:
            if (
                self._payless is not None
                and self._records_since_snapshot >= self.config.compact_after
            ):
                self.snapshot()

    # -- snapshots -------------------------------------------------------------

    def snapshot(self) -> Path:
        """Write a compacted snapshot and rotate to a fresh WAL segment.

        The snapshot is two files: a pickled *tables sidecar* holding the
        bulk store payload (rows, points, covers, prebuilt index buckets)
        and a small meta JSON (totals, bill, pending intents, histograms).
        The sidecar is written and fsynced first; the meta JSON's atomic
        rename is the commit record — a snapshot without a readable
        sidecar is ignored at startup, so a crash between the two writes
        leaves the previous snapshot authoritative.  Pickle (not JSON)
        for the bulk payload because restart adopts the containers
        wholesale instead of re-deriving index buckets row by row.
        """
        payless = self._payless
        if payless is None:
            raise ReproError("snapshot() needs an attached PayLess")
        from repro.stats.isomer import FeedbackHistogram

        with self._lock:
            tables: dict[str, Any] = {}
            bulk: dict[str, Any] = {}
            for key, table_store in payless.store._tables.items():  # noqa: SLF001
                bulk[key] = table_store.export_bulk_state()
                histogram = payless.catalog.statistics(key).histogram
                tables[key] = {
                    "histogram": (
                        histogram.state_snapshot()
                        if isinstance(histogram, FeedbackHistogram)
                        else None
                    ),
                }
            state = {
                "version": SNAPSHOT_VERSION,
                "tables_in_sidecar": True,
                "wal_seq": self._wal_seq,
                "clock": payless.store.clock,
                "intent_seq": self._intent_seq,
                "totals": {
                    "transactions": payless.total_transactions,
                    "price": payless.total_price,
                    "calls": payless.total_calls,
                    "queries": payless.queries_executed,
                    "wasted_transactions": payless.total_wasted_transactions,
                    "wasted_price": payless.total_wasted_price,
                    "coalesced_fetches": payless.total_coalesced_fetches,
                    "coalesced_transactions": (
                        payless.total_coalesced_transactions
                    ),
                    "coalesced_price": payless.total_coalesced_price,
                },
                "bill": self.bill.to_json(),
                "pending_intents": list(self._pending.values()),
                "tables": tables,
            }
            seq = self._wal_seq
            sidecar = self.state_dir / f"snapshot-{seq:08d}.tables.pkl"
            sidecar_tmp = sidecar.with_suffix(".pkl.tmp")
            with open(sidecar_tmp, "wb") as handle:
                pickle.dump(bulk, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(sidecar_tmp, sidecar)
            final = self.state_dir / f"snapshot-{seq:08d}.json"
            tmp = final.with_suffix(".json.tmp")
            with open(tmp, "w") as handle:
                json.dump(state, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, final)
            self._fsync_dir()
            # Rotate: the snapshot supersedes every segment <= seq and
            # every older snapshot.
            self.wal.close()
            self._wal_seq = seq + 1
            self.wal = WriteAheadLog(
                self._segment_path(self._wal_seq), fsync=self.config.fsync
            )
            for path in self.state_dir.iterdir():
                match = _SEGMENT_RE.match(path.name)
                if match and int(match.group(1)) <= seq:
                    path.unlink()
                    continue
                match = _SNAPSHOT_RE.match(path.name) or _SIDECAR_RE.match(
                    path.name
                )
                if match and int(match.group(1)) < seq:
                    path.unlink()
            self._records_since_snapshot = 0
            # The new snapshot supersedes whatever startup staged for
            # recovery (relevant when a legacy JSON import snapshots into
            # a dir that was never recover()ed).
            self._cache_dropped = True
            self._snapshot_state = None
            self._snapshot_tables = None
            self._replay_records = []
            return final

    def _fsync_dir(self) -> None:
        fd = os.open(self.state_dir, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- recovery --------------------------------------------------------------

    def recover(self, payless: "PayLess") -> RecoveryReport:
        """Rebuild the installation's state: snapshot, WAL replay, then
        roll pending intents forward.  Call after dataset registration
        and before the first query."""
        with self._lock:
            if self._cache_dropped:
                raise ReproError(
                    "recover() must run before the first logged mutation"
                )
            self._payless = payless
            report = RecoveryReport(
                clock=self._clock, torn_bytes_truncated=self._torn_bytes
            )
            snapshot = self._snapshot_state
            if snapshot is not None:
                report.snapshot_loaded = True
                for key, table_state in snapshot["tables"].items():
                    if not payless.store.has_table(key):
                        raise ReproError(
                            f"state references unregistered table {key!r}; "
                            "call register_dataset first"
                        )
                    table_store = payless.store.table(key)
                    if self._snapshot_tables is not None:
                        # Sidecar snapshot: adopt the pickled containers
                        # (rows, points, covers, prebuilt index buckets)
                        # wholesale — no per-row index rebuild.
                        table_store.adopt_bulk_state(
                            self._snapshot_tables[key]
                        )
                        self._restore_histogram(payless, key, table_state)
                        report.tables.append(key)
                        continue
                    if "columns" in table_state:
                        columns = table_state["columns"]
                        restored_rows = list(zip(*columns)) if columns else []
                        points_flat = table_state["points_flat"]
                        dims = table_state["dims"]
                        if points_flat:
                            chunks = [iter(points_flat)] * dims
                            restored_points = list(zip(*chunks))
                        else:
                            restored_points = []
                        for row_id in table_state["points_none"]:
                            restored_points.insert(row_id, None)
                    else:  # legacy row-major snapshot layout
                        restored_rows = rows_from_json(table_state["rows"])
                        restored_points = [
                            tuple(point) if point is not None else None
                            for point in table_state.get("points") or []
                        ] or None
                    table_store.bulk_restore(
                        covers=[
                            cover_from_json(c) for c in table_state["covered"]
                        ],
                        rows=restored_rows,
                        points=restored_points,
                    )
                    self._restore_histogram(payless, key, table_state)
                    report.tables.append(key)
                payless.store.clock = snapshot["clock"]
                self._apply_totals(payless, snapshot["totals"], absolute=True)
            for record in self._replay_records:
                report.records_replayed += 1
                kind = record["t"]
                if kind == "buy":
                    self._replay_purchase(payless, record)
                    report.purchases_replayed += 1
                elif kind == "clk":
                    payless.store.clock = record["c"]
                elif kind == "q":
                    self._apply_totals(
                        payless,
                        {
                            "transactions": record["tx"],
                            "price": record["p"],
                            "calls": record["calls"],
                            "queries": 1,
                            "wasted_transactions": record["wtx"],
                            "wasted_price": record["wp"],
                            "coalesced_fetches": record["cf"],
                            "coalesced_transactions": record["ctx"],
                            "coalesced_price": record["cp"],
                        },
                        absolute=False,
                    )
            if self.config.resolve_intents:
                for intent in list(self._pending.values()):
                    self._resolve_intent(payless, intent)
                    report.intents_resolved += 1
            report.clock = payless.store.clock
            self._clock = payless.store.clock
            self._recovered = True
            self._cache_dropped = True
            self._snapshot_state = None
            self._snapshot_tables = None
            self._replay_records = []
            self.wal.commit()
            return report

    def _restore_histogram(
        self, payless: "PayLess", key: str, table_state: dict
    ) -> None:
        from repro.stats.isomer import FeedbackHistogram

        histogram = payless.catalog.statistics(key).histogram
        histogram_state = table_state.get("histogram")
        if histogram_state is not None and isinstance(
            histogram, FeedbackHistogram
        ):
            histogram.restore_state(
                histogram_state["cardinality"],
                histogram_state["feedback_count"],
                [
                    (box_from_json(r["box"]), r["count"])
                    for r in histogram_state["refined"]
                ],
            )

    def _apply_totals(
        self, payless: "PayLess", totals: dict, absolute: bool
    ) -> None:
        mapping = {
            "transactions": "total_transactions",
            "price": "total_price",
            "calls": "total_calls",
            "queries": "queries_executed",
            "wasted_transactions": "total_wasted_transactions",
            "wasted_price": "total_wasted_price",
            "coalesced_fetches": "total_coalesced_fetches",
            "coalesced_transactions": "total_coalesced_transactions",
            "coalesced_price": "total_coalesced_price",
        }
        for source, attribute in mapping.items():
            value = totals.get(source, 0)
            if absolute:
                setattr(payless, attribute, value)
            else:
                setattr(payless, attribute, getattr(payless, attribute) + value)

    def _replay_purchase(self, payless: "PayLess", record: dict) -> None:
        """Re-execute one purchase record against the store + statistics.

        Replaying ``record`` + ``observe`` in WAL order reproduces the
        store's cover consolidation and the histogram's refined-box state
        exactly — both are deterministic functions of the call sequence.
        """
        from repro.stats.isomer import FeedbackHistogram

        table = record["table"]
        if not payless.store.has_table(table):
            raise ReproError(
                f"WAL references unregistered table {table!r}; "
                "call register_dataset first"
            )
        box = box_from_json(record["box"])
        rows = rows_from_json(record["rows"])
        payless.store.table(table).record(box, rows, record["at"])
        histogram = payless.catalog.statistics(table).histogram
        if isinstance(histogram, FeedbackHistogram):
            histogram.observe(box, record["n"])

    def _resolve_intent(self, payless: "PayLess", intent: dict) -> None:
        """Roll one pending intent forward with its original key.

        If the market billed the key before the crash, the idempotency
        cache replays the response for free and the orphaned charge is
        adopted into the bill; if the call never went out, it completes
        (and bills) now.  Either way: exactly one charge per key.
        """
        from repro.stats.isomer import FeedbackHistogram

        request = request_from_json(intent["req"])
        table = intent["table"]
        response = payless.market.get(request, idempotency_key=intent["k"])
        table_store = payless.store.table(table)
        boxes = table_store.space.boxes_for_constraints(request.constraints)
        if len(boxes) != 1:  # pragma: no cover - REST requests are 1 box
            raise ReproError(
                f"intent {intent['k']} does not describe one box: {boxes!r}"
            )
        with table_store.lock:
            table_store.record(boxes[0], response.rows, intent["at"])
            histogram = payless.catalog.statistics(table).histogram
            if isinstance(histogram, FeedbackHistogram):
                histogram.observe(boxes[0], response.record_count)
            self.log_purchase(
                table=table,
                box=boxes[0],
                rows=response.rows,
                count=response.record_count,
                stored_at=intent["at"],
                url=request.url(),
                key=intent["k"],
                transactions=response.transactions,
                price=response.price,
            )

    # -- lifecycle -------------------------------------------------------------

    def close(self, snapshot: bool | None = None) -> None:
        """Clean shutdown: group-commit, optionally snapshot, close."""
        with self._lock:
            if self.wal.closed:
                return
            self.wal.commit()
            take_snapshot = (
                self.config.snapshot_on_close if snapshot is None else snapshot
            )
            if take_snapshot and self._payless is not None:
                self.snapshot()
            self.wal.close()

    def abandon(self) -> None:
        """Drop the WAL handle without syncing — the test double of a
        kill.  Anything not yet OS-visible is lost, as it would be."""
        self.wal.close(final_sync=False)

    def __repr__(self) -> str:
        return (
            f"DurableStateBackend({self.state_dir}, wal_seq={self._wal_seq}, "
            f"fsync={self.config.fsync!r}, pending={len(self._pending)})"
        )
