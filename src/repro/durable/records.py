"""JSON shapes shared by the WAL records and the snapshot/legacy formats.

Boxes, covered regions, histogram state and REST requests all need a
stable JSON form in three places — WAL records, compacted snapshots, and
the legacy v1/v2 blob of :mod:`repro.core.persistence` — so the
encoders/decoders live here, importable by both without cycles.
"""

from __future__ import annotations

from typing import Any

from repro.relational.query import AttributeConstraint
from repro.market.rest import RestRequest
from repro.semstore.boxes import Box
from repro.semstore.store import CoveredBox


def box_to_json(box: Box) -> list[list[int]]:
    return [list(extent) for extent in box.extents]


def box_from_json(data: list[list[int]]) -> Box:
    return Box(tuple((low, high) for low, high in data))


def cover_to_json(covered: CoveredBox) -> dict[str, Any]:
    return {
        "box": box_to_json(covered.box),
        "stored_at": covered.stored_at,
        "row_count": covered.row_count,
    }


def cover_from_json(data: dict[str, Any]) -> CoveredBox:
    return CoveredBox(
        box=box_from_json(data["box"]),
        stored_at=data["stored_at"],
        row_count=data["row_count"],
    )


def constraint_to_json(constraint: AttributeConstraint) -> dict[str, Any]:
    """One REST-expressible constraint (point or range; never a set)."""
    if constraint.value is not None:
        return {"a": constraint.attribute, "v": constraint.value}
    return {"a": constraint.attribute, "lo": constraint.low, "hi": constraint.high}


def constraint_from_json(data: dict[str, Any]) -> AttributeConstraint:
    if "v" in data:
        return AttributeConstraint(data["a"], value=data["v"])
    return AttributeConstraint(data["a"], low=data["lo"], high=data["hi"])


def request_to_json(request: RestRequest) -> dict[str, Any]:
    return {
        "d": request.dataset,
        "tbl": request.table,
        "c": [constraint_to_json(c) for c in request.constraints],
    }


def request_from_json(data: dict[str, Any]) -> RestRequest:
    return RestRequest(
        data["d"],
        data["tbl"],
        tuple(constraint_from_json(c) for c in data["c"]),
    )


def rows_to_json(rows: Any) -> list[list[Any]]:
    return [list(row) for row in rows]


def rows_from_json(data: list[list[Any]]) -> list[tuple]:
    return [tuple(row) for row in data]
