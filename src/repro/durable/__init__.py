"""Durable buyer-side state: a write-ahead log with compacted snapshots.

Every purchase against the data market spends real money, so the moment
a charge lands it must survive a buyer-process crash — otherwise a
restart re-buys data the installation already paid for.  This package
replaces the all-or-nothing JSON blob of :mod:`repro.core.persistence`
with an incremental, crash-safe backend:

* :mod:`repro.durable.wal` — append-only segments of length+CRC framed
  JSON records with torn-tail detection and fsync-batched group commit;
* :mod:`repro.durable.backend` — the :class:`DurableStateBackend` that
  journals intents, purchases, waste, histogram feedback, the logical
  clock and the billing buckets, writes compacted snapshots, and
  recovers a :class:`~repro.core.payless.PayLess` installation by
  replaying snapshot + WAL (rolling forward any purchase that was billed
  but never acknowledged, via the market's idempotency cache).

Enable it with ``QueryOptions(durability="state_dir/")`` (or a full
:class:`DurabilityConfig`), call ``payless.recover()`` after dataset
registration, and ``payless.close()`` on shutdown.
"""

from repro.durable.wal import SimulatedCrash, WriteAheadLog

__all__ = [
    "DurabilityConfig",
    "DurableBill",
    "DurableStateBackend",
    "RecoveryReport",
    "SimulatedCrash",
    "WriteAheadLog",
]

#: Backend classes resolve lazily: the transport imports this package for
#: :class:`SimulatedCrash` while the store/market modules are still mid-
#: import, and the backend needs those modules — a cycle unless deferred.
_BACKEND_EXPORTS = frozenset(
    ("DurabilityConfig", "DurableBill", "DurableStateBackend", "RecoveryReport")
)


def __getattr__(name: str):
    if name in _BACKEND_EXPORTS:
        from repro.durable import backend

        return getattr(backend, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
