"""The write-ahead log: length+CRC framed JSON records, torn-tail safe.

One WAL segment is a flat file of frames::

    [4-byte length LE] [4-byte crc32 LE] [length bytes of UTF-8 JSON]

Appends are unbuffered ``write(2)`` calls, so a record is OS-visible the
moment :meth:`WriteAheadLog.append` returns — that is the durability a
*process* kill can test.  Power-loss durability is the fsync policy's
job: ``"always"`` fsyncs every append, ``"commit"`` fsyncs only at group
commit points (:meth:`WriteAheadLog.commit`), and ``"os"`` never fsyncs.

Recovery reads a segment with :func:`iter_records`, which stops at the
first incomplete or checksum-mismatched frame — a *torn tail* from a
kill mid-write — and reports the byte offset of the valid prefix so the
backend can truncate the tail before appending again.  A torn record can
only be the last one: appends are serialized under the backend's lock,
so nothing is ever written after the frame the crash interrupted.

``crash_hook`` is the chaos suite's kill switch: when set, every append
consults it and, if it returns a byte count, writes exactly that many
bytes of the frame (0 = crash before the record, ``len(frame)`` = crash
after the record but before the caller is acknowledged, anything in
between = a torn record) and raises :class:`SimulatedCrash`.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Callable

#: Frame header: payload length, then crc32 of the payload bytes.
HEADER = struct.Struct("<II")

#: The fsync policies :class:`WriteAheadLog` understands.
FSYNC_POLICIES = ("always", "commit", "os")


class SimulatedCrash(BaseException):
    """Raised by an armed ``crash_hook`` to simulate a buyer-process kill.

    Deliberately a :class:`BaseException`: the executor and transport
    catch :class:`Exception`/``TransportError`` to degrade gracefully,
    but a killed process does not degrade — the crash must unwind all the
    way out of the query, exactly like ``KeyboardInterrupt`` would.
    """


def encode_record(payload: dict[str, Any]) -> bytes:
    """Frame one JSON payload: header + compact UTF-8 JSON."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return HEADER.pack(len(body), zlib.crc32(body)) + body


def iter_records(data: bytes) -> tuple[list[dict[str, Any]], int]:
    """Decode ``data`` into records, stopping at the first torn frame.

    Returns ``(records, valid_offset)`` where ``valid_offset`` is the
    length of the longest decodable prefix — everything past it is a torn
    tail (truncated header, short body, or CRC mismatch) and must be
    discarded before the segment is appended to again.
    """
    records: list[dict[str, Any]] = []
    offset = 0
    size = len(data)
    while offset + HEADER.size <= size:
        length, checksum = HEADER.unpack_from(data, offset)
        body_start = offset + HEADER.size
        body_end = body_start + length
        if body_end > size:
            break
        body = data[body_start:body_end]
        if zlib.crc32(body) != checksum:
            break
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        records.append(payload)
        offset = body_end
    return records, offset


class WriteAheadLog:
    """One open, append-only WAL segment.

    Writes are unbuffered; :meth:`append` optionally fsyncs per record
    (the ``"always"`` policy) and :meth:`commit` is the group-commit
    point that fsyncs once for every record appended since the last
    commit (the ``"commit"`` policy).  Not thread-safe on its own — the
    owning backend serializes appends under its lock.
    """

    def __init__(self, path: str | Path, fsync: str = "commit"):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; pick one of {FSYNC_POLICIES}"
            )
        self.path = Path(path)
        self.fsync = fsync
        #: Chaos kill switch: ``hook(payload, frame) -> int | None``.
        #: ``None`` lets the append proceed; an int writes that many bytes
        #: of the frame and raises :class:`SimulatedCrash`.
        self.crash_hook: Callable[[dict, bytes], int | None] | None = None
        self._file = open(self.path, "ab", buffering=0)  # noqa: SIM115
        self._dirty = False

    @property
    def closed(self) -> bool:
        return self._file.closed

    def tell(self) -> int:
        return self._file.tell()

    def append(self, payload: dict[str, Any], sync: bool = False) -> None:
        """Append one framed record (OS-visible on return).

        ``sync=True`` forces an fsync for this record regardless of
        policy — the backend uses it for intent records under the
        ``"commit"`` policy, because an intent *is* a commit point: it
        must be durable before the market call it covers can bill.
        """
        frame = encode_record(payload)
        hook = self.crash_hook
        if hook is not None:
            cut = hook(payload, frame)
            if cut is not None:
                cut = max(0, min(cut, len(frame)))
                if cut:
                    self._file.write(frame[:cut])
                raise SimulatedCrash(
                    f"simulated kill after {cut}/{len(frame)} bytes of a "
                    f"{payload.get('t', '?')} record"
                )
        self._file.write(frame)
        if self.fsync == "always" or (sync and self.fsync != "os"):
            os.fsync(self._file.fileno())
            self._dirty = False
        else:
            self._dirty = True

    def commit(self) -> None:
        """Group commit: one fsync covering every append since the last."""
        if self.fsync == "always" or self.fsync == "os" or not self._dirty:
            return
        if not self._file.closed:
            os.fsync(self._file.fileno())
        self._dirty = False

    def close(self, final_sync: bool = True) -> None:
        if self._file.closed:
            return
        if final_sync and self.fsync != "os" and self._dirty:
            os.fsync(self._file.fileno())
            self._dirty = False
        self._file.close()

    @staticmethod
    def truncate_torn_tail(path: str | Path) -> tuple[list[dict], int]:
        """Read a segment, truncating any torn tail in place.

        Returns the decoded records and the (possibly shortened) segment
        length.  Safe to call on a segment that is about to be reopened
        for append — recovery's first step.
        """
        path = Path(path)
        data = path.read_bytes()
        records, valid = iter_records(data)
        if valid != len(data):
            with open(path, "r+b") as handle:
                handle.truncate(valid)
        return records, valid

    def __repr__(self) -> str:
        return f"WriteAheadLog({self.path.name}, fsync={self.fsync!r})"
