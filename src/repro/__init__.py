"""PayLess — query optimization over cloud data markets (EDBT 2015).

Reproduction of *"Query Optimization over Cloud Data Market"* by Yu Li,
Eric Lo, Man Lung Yiu and Wenjian Xu.  The top-level package re-exports the
pieces most users need:

* :class:`~repro.market.server.DataMarket` — the simulated priced market;
* :class:`~repro.core.payless.PayLess` — the buyer-side system;
* :class:`~repro.core.baselines.DownloadAllStrategy` — the obvious
  alternative PayLess is measured against;
* :class:`~repro.market.transport.TransportConfig` and
  :class:`~repro.market.faults.FaultPolicy` — the money-safe transport
  (retries, at-most-once billing, fault injection) and the exception
  hierarchy it raises (:class:`~repro.errors.TransportError` and friends);
* :class:`~repro.obs.trace.Tracer` / :class:`~repro.obs.trace.QueryTrace`
  and :class:`~repro.obs.metrics.MetricsRegistry` — the observability
  layer behind ``PayLess(tracing=True)`` and ``explain_analyze``;
* :class:`~repro.core.objectives.QueryOptions` — every installation knob
  in one place — with :class:`~repro.core.objectives.PlanObjective` and
  :class:`~repro.core.objectives.ServiceTier` steering the planner's
  money-latency Pareto frontier (see
  :class:`~repro.errors.InfeasibleObjectiveError` and the market's
  :class:`~repro.market.latency.LatencyModel`);
* :class:`~repro.durable.DurabilityConfig` /
  :class:`~repro.durable.DurableStateBackend` — crash-safe WAL-backed
  buyer state behind ``QueryOptions(durability=...)``: every purchase is
  durable the moment it is billed, and restarts replay snapshot + WAL
  (see :mod:`repro.durable`).
"""

from repro.core.objectives import (
    SERVICE_TIERS,
    AdaptivePolicy,
    PlanObjective,
    QueryOptions,
    ServiceTier,
)
from repro.core.optimizer import OptimizerOptions
from repro.core.payless import Explanation, PayLess, QueryResult, QueryStats
from repro.durable import (
    DurabilityConfig,
    DurableStateBackend,
    RecoveryReport,
)
from repro.market.latency import DEFAULT_LATENCY, INSTANT, LatencyModel
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import QueryTrace, Tracer
from repro.core.baselines import DownloadAllStrategy
from repro.errors import (
    ExecutionError,
    InfeasibleObjectiveError,
    MarketError,
    MarketUnavailableError,
    PlanningError,
    ReproError,
    RetryExhaustedError,
    SqlAnalysisError,
    TransportError,
)
from repro.market.binding import AccessMode, BindingPattern
from repro.market.dataset import Dataset
from repro.market.faults import FaultPolicy
from repro.market.pricing import PricingPolicy
from repro.market.server import DataMarket
from repro.market.transport import TransportConfig
from repro.relational.database import Database
from repro.relational.engine import ExecutionConfig
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.table import Table
from repro.relational.types import AttributeType
from repro.semstore.consistency import ConsistencyLevel, ConsistencyPolicy

__version__ = "1.0.0"

__all__ = [
    "AccessMode",
    "AdaptivePolicy",
    "Attribute",
    "AttributeType",
    "BindingPattern",
    "ConsistencyLevel",
    "ConsistencyPolicy",
    "Database",
    "DataMarket",
    "Dataset",
    "DEFAULT_LATENCY",
    "Domain",
    "DownloadAllStrategy",
    "DurabilityConfig",
    "DurableStateBackend",
    "ExecutionConfig",
    "ExecutionError",
    "Explanation",
    "FaultPolicy",
    "InfeasibleObjectiveError",
    "INSTANT",
    "LatencyModel",
    "MarketError",
    "MarketUnavailableError",
    "MetricsRegistry",
    "OptimizerOptions",
    "PayLess",
    "PlanningError",
    "PlanObjective",
    "PricingPolicy",
    "QueryOptions",
    "QueryResult",
    "QueryStats",
    "QueryTrace",
    "RecoveryReport",
    "REGISTRY",
    "ReproError",
    "RetryExhaustedError",
    "Schema",
    "SERVICE_TIERS",
    "ServiceTier",
    "SqlAnalysisError",
    "Table",
    "Tracer",
    "TransportConfig",
    "TransportError",
    "__version__",
]
