"""PayLess — query optimization over cloud data markets (EDBT 2015).

Reproduction of *"Query Optimization over Cloud Data Market"* by Yu Li,
Eric Lo, Man Lung Yiu and Wenjian Xu.  The top-level package re-exports the
pieces most users need:

* :class:`~repro.market.server.DataMarket` — the simulated priced market;
* :class:`~repro.core.payless.PayLess` — the buyer-side system;
* :class:`~repro.core.baselines.DownloadAllStrategy` — the obvious
  alternative PayLess is measured against.
"""

from repro.core.optimizer import OptimizerOptions
from repro.core.payless import PayLess, QueryResult
from repro.core.baselines import DownloadAllStrategy
from repro.errors import ReproError
from repro.market.binding import AccessMode, BindingPattern
from repro.market.dataset import Dataset
from repro.market.pricing import PricingPolicy
from repro.market.server import DataMarket
from repro.relational.database import Database
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.table import Table
from repro.relational.types import AttributeType
from repro.semstore.consistency import ConsistencyLevel, ConsistencyPolicy

__version__ = "1.0.0"

__all__ = [
    "AccessMode",
    "Attribute",
    "AttributeType",
    "BindingPattern",
    "ConsistencyLevel",
    "ConsistencyPolicy",
    "Database",
    "DataMarket",
    "Dataset",
    "Domain",
    "DownloadAllStrategy",
    "OptimizerOptions",
    "PayLess",
    "PricingPolicy",
    "QueryResult",
    "ReproError",
    "Schema",
    "Table",
    "__version__",
]
