"""Test helpers for PayLess users (and this repo's own suite).

Downstream code that builds on PayLess usually wants two things in its
tests: a small deterministic market to run against, and an *oracle* — the
query evaluated over full local copies of every market table — to compare
results with.  Both live here as public, documented API.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.payless import PayLess
from repro.market.binding import BindingPattern
from repro.market.dataset import Dataset
from repro.market.pricing import PricingPolicy
from repro.market.server import DataMarket
from repro.relational.database import Database
from repro.relational.engine import ExecutionConfig, evaluate
from repro.relational.operators import Relation
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.table import Table
from repro.relational.types import AttributeType


def tiny_weather_market(
    stations: Sequence[tuple[str, int, str]] = (
        ("CountryA", 1, "Alpha"),
        ("CountryA", 2, "Alpha"),
        ("CountryA", 3, "Beta"),
        ("CountryB", 4, "Delta"),
    ),
    days: int = 10,
    tuples_per_transaction: int = 10,
) -> DataMarket:
    """A deterministic WHW-like market for tests.

    ``stations`` is a list of ``(country, station_id, city)``; Weather gets
    one row per station per day with ``Temperature = station_id*10 + day``.
    """
    countries = sorted({s[0] for s in stations})
    cities = sorted({s[2] for s in stations})
    ids = [s[1] for s in stations]
    station_schema = Schema(
        [
            Attribute("Country", AttributeType.STRING, Domain.categorical(countries)),
            Attribute(
                "StationID", AttributeType.INT, Domain.numeric(min(ids), max(ids))
            ),
            Attribute("City", AttributeType.STRING, Domain.categorical(cities)),
        ]
    )
    weather_schema = Schema(
        [
            Attribute("Country", AttributeType.STRING, Domain.categorical(countries)),
            Attribute(
                "StationID", AttributeType.INT, Domain.numeric(min(ids), max(ids))
            ),
            Attribute("Date", AttributeType.DATE, Domain.numeric(1, days)),
            Attribute("Temperature", AttributeType.FLOAT),
        ]
    )
    weather_rows = [
        (country, sid, day, float(sid * 10 + day))
        for country, sid, __ in stations
        for day in range(1, days + 1)
    ]
    dataset = Dataset(
        "WHW", PricingPolicy(tuples_per_transaction=tuples_per_transaction)
    )
    dataset.add_table(
        Table("Station", station_schema, list(stations)),
        BindingPattern.parse("Station", "Countryf, StationIDf, Cityf"),
    )
    dataset.add_table(
        Table("Weather", weather_schema, weather_rows),
        BindingPattern.parse("Weather", "Countryf, StationIDf, Datef"),
    )
    market = DataMarket()
    market.publish(dataset)
    return market


def registered_payless(market: DataMarket, **kwargs: Any) -> PayLess:
    """A PayLess install with every published dataset registered."""
    payless = PayLess.full(market, **kwargs)
    for dataset in market:
        payless.register_dataset(dataset.name)
    return payless


def oracle_evaluate(
    payless: PayLess, sql: str, params: Sequence[Any] = ()
) -> Relation:
    """Evaluate ``sql`` over full local copies of every market table.

    The ground truth PayLess's answers must match, whatever plan it chose
    and whatever the semantic store held.  Runs on the row-at-a-time
    reference engine, so it is also an independent check of the
    vectorized operators PayLess executes with by default.
    """
    logical = payless.compile(sql, params)
    database = Database()
    for name in logical.tables:
        if payless.context.is_market(name):
            __, market_table = payless.market.find_table(name)
            clone = Table(name, market_table.schema)
            clone.extend(market_table.table.rows)
            database.add(clone)
        else:
            database.add(payless.local_db.table(name))
    return evaluate(database, logical, ExecutionConfig(engine="reference"))


def assert_matches_oracle(
    payless: PayLess, sql: str, params: Sequence[Any] = ()
) -> None:
    """Run ``sql`` through PayLess and assert it equals the oracle."""
    result = payless.query(sql, params)
    expected = oracle_evaluate(payless, sql, params)
    got = sorted(result.rows, key=repr)
    want = sorted(expected.rows, key=repr)
    assert got == want, (
        f"PayLess answer diverges from oracle for {sql!r}:\n"
        f"  got:  {got[:5]}...\n  want: {want[:5]}..."
    )
