"""Command-line interface: ``python -m repro <command>``.

Four subcommands drive the library without writing any code:

* ``demo`` — the Figure 1 walkthrough (plan choice, billing, free repeat);
* ``session`` — replay a workload session through a chosen system and
  print the cumulative-transaction series (the Figure 10 protocol);
* ``explain`` — compile + optimize a SQL query against a generated
  workload and print the plan without buying anything;
* ``figures`` — regenerate one of the paper's figures and print its table.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench.figures import (
    WORKLOADS,
    figure10,
    figure14,
    figure15,
    make_instances,
    make_workload,
)
from repro.bench.harness import SYSTEMS, download_all_bound, run_session
from repro.bench.reporting import series_table, summary_table
from repro.core.objectives import (
    SERVICE_TIERS,
    AdaptivePolicy,
    PlanObjective,
    ServiceTier,
)
from repro.market.faults import FaultPolicy
from repro.market.transport import TransportConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PayLess: query optimization over cloud data markets "
        "(EDBT 2015 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="run the paper's Figure 1 walkthrough")

    session = commands.add_parser(
        "session", help="replay a workload session and print the spend curve"
    )
    session.add_argument("--workload", choices=WORKLOADS, default="real")
    session.add_argument(
        "--system", choices=SYSTEMS, default="payless",
        help="buyer-side configuration to run",
    )
    session.add_argument(
        "--instances", type=int, default=5,
        help="query instances per template (the paper's q)",
    )
    session.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="RATE",
        help="inject transient market faults with this total probability "
        "per call (0 disables injection)",
    )
    session.add_argument(
        "--fault-seed", type=int, default=0, metavar="SEED",
        help="seed for deterministic fault injection (same seed, same faults)",
    )
    session.add_argument(
        "--max-retries", type=int, default=4, metavar="N",
        help="retries per market call before the query fails",
    )
    session.add_argument(
        "--partial-results", action="store_true",
        help="on retry exhaustion, keep the rows that arrived instead of "
        "failing the query",
    )
    session.add_argument(
        "--metrics", action="store_true",
        help="print the session's metrics snapshot (memo hit rate, store "
        "coverage, fetch-pool high-water mark, spent vs wasted cents)",
    )
    session.add_argument(
        "--engine", choices=["vectorized", "reference"], default="vectorized",
        help="local-evaluation engine: vectorized (columnar batches + "
        "compiled kernels) or reference (the row-at-a-time oracle)",
    )
    session.add_argument(
        "--no-prune", action="store_true",
        help="disable branch-and-bound planner pruning (the exhaustive "
        "enumeration oracle; chosen plans are identical, planning is "
        "slower)",
    )
    session.add_argument(
        "--no-plan-cache", action="store_true",
        help="disable the parameterized plan cache (every query re-plans "
        "from scratch)",
    )
    session.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="serve the session through the concurrent scheduler with N "
        "worker threads (1 = the classic serial replay)",
    )
    session.add_argument(
        "--sessions", type=int, default=4, metavar="N",
        help="tenant sessions to spread the queries over round-robin "
        "(only meaningful with --workers > 1)",
    )
    session.add_argument(
        "--coalesce", action=argparse.BooleanOptionalAction, default=True,
        help="coalesce overlapping in-flight market fetches across "
        "sessions (singleflight); --no-coalesce lets concurrent "
        "sessions pay separately for the same box",
    )
    session.add_argument(
        "--objective", default=None, metavar="SPEC",
        help="planning objective: min_dollars (default), min_latency, "
        "dollars_under_latency_ms:BOUND, latency_under_dollars:BOUND, "
        "or weighted[:LATENCY_WEIGHT_PER_MS]",
    )
    session.add_argument(
        "--tier", default=None, choices=sorted(SERVICE_TIERS),
        help="service tier preset for every serving session "
        "(only meaningful with --workers > 1; overrides --objective)",
    )
    session.add_argument(
        "--adaptive", default=None, metavar="SPEC",
        help="adaptive mid-query re-optimization: "
        "THRESHOLD[:MIN_ROWS[:MAX_REPLANS]] — re-plan the remaining "
        "joins whenever an intermediate's actual cardinality diverges "
        "from the estimate by more than THRESHOLD× (off by default)",
    )
    session.add_argument(
        "--transport", default="threaded", choices=["threaded", "async"],
        help="fetch driver: 'threaded' (the classic thread-pool path, "
        "default) or 'async' (pipelined event loop with per-seller "
        "connection pools and cross-access prefetch)",
    )
    session.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="durable WAL-backed buyer state: purchases, statistics, and "
        "the bill survive crashes and restarts; rerunning with the same "
        "DIR resumes (and re-buys nothing already covered)",
    )

    explain = commands.add_parser(
        "explain", help="optimize a SQL query and print the plan"
    )
    explain.add_argument("--workload", choices=WORKLOADS, default="real")
    explain.add_argument(
        "--analyze", action="store_true",
        help="actually execute the query and annotate the plan with "
        "actuals (est-vs-actual transactions, purchased vs cache-served "
        "rows, wasted dollars)",
    )
    explain.add_argument(
        "--trace-json", action="store_true",
        help="also dump the query's span tree as JSON (implies --analyze)",
    )
    explain.add_argument(
        "--engine", choices=["vectorized", "reference"], default="vectorized",
        help="local-evaluation engine used when executing under --analyze "
        "(EXPLAIN ANALYZE reports which engine ran and its rows/sec)",
    )
    explain.add_argument(
        "--no-prune", action="store_true",
        help="plan with branch-and-bound pruning disabled (the exhaustive "
        "oracle — same plan, full candidate counts in the summary line)",
    )
    explain.add_argument(
        "--objective", default=None, metavar="SPEC",
        help="planning objective (see 'session --objective'); non-default "
        "objectives add the Pareto frontier and chosen point to the output",
    )
    explain.add_argument(
        "sql",
        help="SQL text (no ? parameters); an 'EXPLAIN' or "
        "'EXPLAIN ANALYZE' prefix is accepted and stripped",
    )

    figures = commands.add_parser(
        "figures", help="regenerate one of the paper's figures"
    )
    figures.add_argument(
        "figure", choices=["fig10", "fig14", "fig15"],
        help="which figure to regenerate",
    )
    figures.add_argument("--workload", choices=WORKLOADS, default="real")
    return parser


def _cmd_demo() -> int:
    from examples.quickstart import main as quickstart_main

    try:
        quickstart_main()
    except ImportError:  # examples/ not importable when installed from wheel
        print("examples/quickstart.py not available", file=sys.stderr)
        return 1
    return 0


def _objective_of(args: argparse.Namespace) -> PlanObjective | None:
    """The --objective flag, parsed (None = installation default)."""
    if getattr(args, "objective", None) is None:
        return None
    return PlanObjective.parse(args.objective)


def _adaptive_of(args: argparse.Namespace) -> "AdaptivePolicy | None":
    """The --adaptive flag, parsed (None = static plans, the default)."""
    if getattr(args, "adaptive", None) is None:
        return None
    return AdaptivePolicy.parse(args.adaptive)


def _session_transport(args: argparse.Namespace) -> TransportConfig | None:
    """Build the transport configuration from the session flags."""
    faults = None
    if args.fault_rate > 0.0:
        faults = FaultPolicy.uniform(seed=args.fault_seed, rate=args.fault_rate)
    if faults is None and args.max_retries == 4 and not args.partial_results:
        return None  # defaults: let the harness use the plain transport
    return TransportConfig(
        faults=faults,
        max_retries=args.max_retries,
        partial_results=args.partial_results,
    )


def _cmd_session_concurrent(args: argparse.Namespace, data, instances) -> int:
    """The --workers > 1 path: replay through the serving scheduler."""
    from repro.bench.harness import build_system
    from repro.serve import QueryScheduler, ServeConfig

    payless, __ = build_system(
        args.system,
        data,
        transport=_session_transport(args),
        engine=args.engine,
        prune=not args.no_prune,
        plan_cache_size=0 if args.no_plan_cache else None,
        objective=_objective_of(args),
        adaptive=_adaptive_of(args),
        state_dir=args.state_dir,
        transport_mode=args.transport,
    )
    tier = ServiceTier.named(args.tier) if args.tier else None
    config = ServeConfig(
        workers=args.workers, coalesce=args.coalesce, default_tier=tier
    )
    with QueryScheduler(payless, config) as scheduler:
        tickets = [
            scheduler.session(f"user{i % max(1, args.sessions)}").submit(
                instance.sql, instance.params
            )
            for i, instance in enumerate(instances)
        ]
        failures = 0
        for ticket in tickets:
            try:
                ticket.result()
            except Exception as error:  # noqa: BLE001 - reported, not fatal
                failures += 1
                print(f"  query failed: {error}", file=sys.stderr)
    payless.close()
    print()
    print(scheduler.spend_report())
    coalesced = payless.market.ledger.coalesced_savings
    if coalesced:
        print(
            f"coalescing: {coalesced.calls} shared fetches avoided "
            f"{coalesced.transactions} transactions (${coalesced.price:g})"
        )
    if failures:
        print(f"{failures} queries failed", file=sys.stderr)
        return 1
    return 0


def _cmd_session(args: argparse.Namespace) -> int:
    data = make_workload(args.workload)
    instances = make_instances(args.workload, data, args.instances)
    print(
        f"{args.system} on {args.workload}: {len(instances)} queries over "
        f"{data.total_market_rows()} market rows "
        f"(download-all bound: {download_all_bound(data)} transactions)"
    )
    if args.workers > 1:
        return _cmd_session_concurrent(args, data, instances)
    session = run_session(
        args.system,
        data,
        instances,
        transport=_session_transport(args),
        engine=args.engine,
        prune=not args.no_prune,
        plan_cache_size=0 if args.no_plan_cache else None,
        objective=_objective_of(args),
        adaptive=_adaptive_of(args),
        state_dir=args.state_dir,
        transport_mode=args.transport,
    )
    print()
    print(
        series_table(
            "Cumulative transactions",
            {args.system: session.cumulative_transactions},
        )
    )
    print(
        f"\ntotal: {session.total_transactions} transactions, "
        f"{session.total_calls} calls, ${session.total_price:g}"
    )
    if session.total_replans:
        print(
            f"adaptive: {session.total_replans} mid-query re-plan(s), "
            f"est ${session.replan_dollars_saved_est:g} suffix saved"
        )
    if session.total_faults or session.total_retries:
        print(
            f"faults: {session.total_faults} injected, "
            f"{session.total_retries} retries, "
            f"{session.total_replays} billing replays, "
            f"{session.wasted_transactions} transactions wasted "
            f"(${session.wasted_price:g})"
        )
    if args.metrics and session.metrics:
        print("\nmetrics:")
        for name in sorted(session.metrics):
            value = session.metrics[name]
            rendered = f"{value:g}" if isinstance(value, float) else value
            print(f"  {name} = {rendered}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.bench.harness import build_system

    sql = args.sql.strip()
    analyze = args.analyze or args.trace_json
    upper = sql.upper()
    if upper.startswith("EXPLAIN ANALYZE "):
        analyze = True
        sql = sql[len("EXPLAIN ANALYZE "):].strip()
    elif upper.startswith("EXPLAIN "):
        sql = sql[len("EXPLAIN "):].strip()
    data = make_workload(args.workload)
    payless, __ = build_system(
        "payless", data, engine=args.engine, prune=not args.no_prune
    )
    objective = _objective_of(args)
    explanation = (
        payless.explain_analyze(sql, objective=objective)
        if analyze
        else payless.explain(sql, objective=objective)
    )
    print(explanation.render())
    if args.trace_json:
        print()
        print(explanation.trace.to_json())
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    if args.figure == "fig10":
        sessions = figure10(args.workload)
        print(
            series_table(
                f"Figure 10 ({args.workload}): cumulative transactions",
                {
                    name: session.cumulative_transactions
                    for name, session in sessions.items()
                },
            )
        )
        return 0
    q_values = (2, 4) if args.workload == "real" else (1, 2)
    if args.figure == "fig14":
        results = figure14(args.workload, q_values)
        rows = [
            [q] + [round(results[arm][q], 1) for arm in results]
            for q in q_values
        ]
        print(
            summary_table(
                f"Figure 14 ({args.workload}): avg evaluated plans",
                rows,
                ["q"] + list(results),
            )
        )
        return 0
    results = figure15(args.workload, q_values)
    rows = [
        [q, round(results["PayLess"][q], 1), round(results["No Pruning"][q], 1)]
        for q in q_values
    ]
    print(
        summary_table(
            f"Figure 15 ({args.workload}): avg bounding boxes",
            rows,
            ["q", "PayLess", "No Pruning"],
        )
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "session":
        return _cmd_session(args)
    if args.command == "explain":
        return _cmd_explain(args)
    return _cmd_figures(args)


if __name__ == "__main__":
    raise SystemExit(main())
