"""Zipf sampling for skewed data generation.

The paper's skewed experiments use the Chaudhuri–Narasayya TPC-D skew
generator with ``zipf = 1``; this module provides the same ingredient —
rank ``k`` (1-based) drawn with probability proportional to ``1 / k^z``.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class ZipfSampler:
    """Draws 0-based indices in ``[0, n)`` with Zipf(z) rank probabilities."""

    def __init__(self, n: int, z: float, rng: random.Random):
        if n <= 0:
            raise ValueError("n must be positive")
        if z < 0:
            raise ValueError("z cannot be negative")
        self._rng = rng
        weights = [1.0 / (rank ** z) for rank in range(1, n + 1)]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self) -> int:
        point = self._rng.random() * self._total
        return bisect.bisect_left(self._cumulative, point)

    def choice(self, items: Sequence[T]) -> T:
        return items[self.sample() % len(items)]


def skewed_choice(
    items: Sequence[T], z: float | None, rng: random.Random
) -> T:
    """Uniform choice when ``z`` is None, Zipf(z) rank-skewed otherwise.

    The rank order is the sequence order, so callers control which items
    are "hot" by how they sort ``items``.
    """
    if z is None:
        return rng.choice(items)
    weights = [1.0 / (rank ** z) for rank in range(1, len(items) + 1)]
    return rng.choices(items, weights=weights, k=1)[0]
