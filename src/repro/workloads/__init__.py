"""Workload generators: the paper's real-data workload and TPC-H (±skew)."""

from repro.workloads.tpch import (
    TEMPLATES as TPCH_TEMPLATES,
    TpchConfig,
    TpchInstanceGenerator,
    TpchWorkloadData,
    generate_tpch_workload,
)
from repro.workloads.weather import (
    TEMPLATES as WEATHER_TEMPLATES,
    QueryInstance,
    WeatherConfig,
    WeatherInstanceGenerator,
    WeatherWorkloadData,
    generate_weather_workload,
)
from repro.workloads.zipfian import ZipfSampler, skewed_choice

__all__ = [
    "QueryInstance",
    "TPCH_TEMPLATES",
    "TpchConfig",
    "TpchInstanceGenerator",
    "TpchWorkloadData",
    "WEATHER_TEMPLATES",
    "WeatherConfig",
    "WeatherInstanceGenerator",
    "WeatherWorkloadData",
    "ZipfSampler",
    "generate_tpch_workload",
    "generate_weather_workload",
    "skewed_choice",
]
