"""Synthetic join-graph workloads: chain / star / clique market tables.

The planner benchmarks and parity tests need join graphs whose *shape*
and *size* are controlled exactly — the weather and TPC-H workloads max
out at a handful of tables.  This module publishes one dataset of ``n``
market tables wired as:

* **chain**  — ``T1 — T2 — … — Tn`` (table *i* shares join attribute
  ``K<i>`` with table *i+1*); the topology the closed-form
  ``plan_space_*`` counts in :mod:`repro.core.optimizer` describe;
* **star**   — hub ``T1`` joined to every spoke ``T2..Tn`` on a
  dedicated attribute;
* **clique** — every pair of tables joined on a dedicated attribute
  (the worst case for subset enumeration).

Every attribute is a free (unbound) integer dimension, so direct access
is always feasible and every join attribute is bindable — the regime the
enumeration-count formulas assume.  Data is deterministic for a given
``(shape, n, seed)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ReproError
from repro.market.binding import BindingPattern
from repro.market.dataset import Dataset
from repro.market.pricing import PricingPolicy
from repro.relational.database import Database
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.table import Table
from repro.relational.types import AttributeType as T

SHAPES = ("chain", "star", "clique")

#: Default integer domain of every join attribute: values in [1, DOMAIN_HIGH].
DOMAIN_HIGH = 4
#: Rows sampled per table when the full cross product would be too big.
SAMPLED_ROWS = 24


@dataclass
class SyntheticJoinData:
    """The harness-compatible workload-data view of one join graph."""

    dataset: Dataset
    shape: str
    n: int
    #: Table names ``T1..Tn`` in chain/spoke order.
    tables: list[str]
    #: The n-way join query over the whole graph (no constraints).
    sql: str

    @property
    def datasets(self) -> list[Dataset]:
        return [self.dataset]

    def local_database(self) -> Database:
        return Database()

    def total_market_rows(self) -> int:
        return sum(len(table.table) for table in self.dataset)


def _columns_for(shape: str, index: int, n: int) -> list[str]:
    """Join-attribute columns of table ``T<index>`` (1-based)."""
    if shape == "chain":
        columns = []
        if index > 1:
            columns.append(f"K{index - 1}")
        if index < n:
            columns.append(f"K{index}")
        return columns
    if shape == "star":
        if index == 1:  # the hub carries one attribute per spoke
            return [f"K{i}" for i in range(2, n + 1)]
        return [f"K{index}"]
    if shape == "clique":
        return [
            f"K{min(index, j)}_{max(index, j)}"
            for j in range(1, n + 1)
            if j != index
        ]
    raise ReproError(f"unknown join-graph shape {shape!r}; pick one of {SHAPES}")


def _rows_for(
    columns: list[str],
    rng: random.Random,
    domain_high: int,
    skew: float = 0.0,
    rows: int | None = None,
) -> list[tuple]:
    if skew == 0.0 and rows is None:
        # The historical generator, byte-identical (including how much of
        # the rng stream it consumes) for every pre-existing caller.
        if len(columns) == 1:
            return [(value,) for value in range(1, domain_high + 1)]
        if len(columns) == 2 and domain_high <= DOMAIN_HIGH:
            # Small cross product, fully materialized.
            return [
                (a, b)
                for a in range(1, domain_high + 1)
                for b in range(1, domain_high + 1)
            ]
        return [
            tuple(rng.randint(1, domain_high) for __ in columns)
            for __ in range(max(SAMPLED_ROWS, domain_high))
        ]
    # Skewed / sized tables additionally carry a value column ``V`` whose
    # distribution piles onto the low end of the domain (power-law via
    # inverse-transform sampling): a range constraint near the low end
    # matches far more rows than the uniform histogram estimate expects —
    # exactly the correlated misestimate adaptive re-optimization exists
    # to catch.  Join keys stay uniform.
    count = rows if rows is not None else max(SAMPLED_ROWS, domain_high)
    exponent = 1.0 + max(skew, 0.0)
    out = []
    for __ in range(count):
        values = [rng.randint(1, domain_high) for __ in columns]
        values.append(
            1 + int((domain_high - 1) * (rng.random() ** exponent))
        )
        out.append(tuple(values))
    return out


def _join_pairs(shape: str, n: int) -> list[tuple[int, int, str]]:
    """(left table index, right table index, join attribute) per edge."""
    if shape == "chain":
        return [(i, i + 1, f"K{i}") for i in range(1, n)]
    if shape == "star":
        return [(1, i, f"K{i}") for i in range(2, n + 1)]
    if shape == "clique":
        return [
            (i, j, f"K{i}_{j}")
            for i in range(1, n + 1)
            for j in range(i + 1, n + 1)
        ]
    raise ReproError(f"unknown join-graph shape {shape!r}; pick one of {SHAPES}")


def join_graph_sql(shape: str, n: int) -> str:
    """The n-way join over the whole graph: SELECT * plus every edge."""
    tables = ", ".join(f"T{i}" for i in range(1, n + 1))
    predicates = " AND ".join(
        f"T{left}.{attr} = T{right}.{attr}"
        for left, right, attr in _join_pairs(shape, n)
    )
    sql = f"SELECT * FROM {tables}"
    if predicates:
        sql += f" WHERE {predicates}"
    return sql


def make_join_graph(
    shape: str,
    n: int,
    tuples_per_transaction: int = 10,
    seed: int = 0,
    domain_high: int = DOMAIN_HIGH,
    skew: float = 0.0,
    rows: int | None = None,
) -> SyntheticJoinData:
    """Publish a ``shape`` join graph of ``n`` market tables as one dataset.

    ``domain_high`` sets the join-attribute domain ``[1, domain_high]``
    (and with it the table sizes).  The default keeps tables tiny, which
    makes every plan's latency proportional to its price; raise it so
    direct fetches grow transaction-heavy while bind joins stay
    per-call-dominated — the regime where the money-latency Pareto
    frontier has more than one point.

    ``skew``/``rows`` switch the generator into its correlated-skew mode
    (the adaptive-reoptimization workload): every table gains an extra
    integer value column ``V`` drawn power-law toward the low end of the
    domain (sharper as ``skew`` grows) and holds exactly ``rows`` rows.
    A range constraint like ``V < 3`` then matches far more rows than
    the uniform estimate predicts.  Both default off, and the defaults
    are byte-identical to the historical generator.
    """
    if n < 1:
        raise ReproError(f"a join graph needs at least one table, got n={n}")
    if domain_high < 1:
        raise ReproError(f"domain_high must be >= 1, got {domain_high}")
    if skew < 0:
        raise ReproError(f"skew cannot be negative, got {skew}")
    if rows is not None and rows < 1:
        raise ReproError(f"rows must be >= 1, got {rows}")
    value_column = skew > 0.0 or rows is not None
    rng = random.Random(seed)
    dataset = Dataset(
        f"SYN_{shape.upper()}{n}",
        PricingPolicy(tuples_per_transaction=tuples_per_transaction),
    )
    tables = []
    for index in range(1, n + 1):
        name = f"T{index}"
        columns = _columns_for(shape, index, n)
        attributes = [
            Attribute(column, T.INT, Domain.numeric(1, domain_high))
            for column in columns
        ]
        free_columns = list(columns)
        if value_column:
            attributes.append(
                Attribute("V", T.INT, Domain.numeric(1, domain_high))
            )
            free_columns.append("V")
        schema = Schema(attributes)
        pattern = BindingPattern.parse(
            name, ", ".join(f"{column}f" for column in free_columns)
        )
        dataset.add_table(
            Table(
                name,
                schema,
                _rows_for(columns, rng, domain_high, skew=skew, rows=rows),
            ),
            pattern,
        )
        tables.append(name)
    return SyntheticJoinData(
        dataset=dataset,
        shape=shape,
        n=n,
        tables=tables,
        sql=join_graph_sql(shape, n),
    )
