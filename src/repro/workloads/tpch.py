"""A scaled TPC-H data generator plus a market-compatible query workload.

The paper evaluates on 1 GB TPC-H (uniform) and 1 GB TPC-H skew
(Chaudhuri–Narasayya, ``zipf = 1``), with *all parametric attributes set as
free attributes* and ``Nation``/``Region`` local.  This module generates the
eight TPC-H tables at an arbitrary scale (``scale = 1.0`` ≈ 13k lineitems —
adjust upward to taste), optionally with Zipf(1) value skew, publishes the
six big tables as one priced dataset, and provides twenty query templates
derived from the TPC-H queries but restricted to PayLess's SQL subset
(conjunctive predicates, equi-joins, group-by aggregation — no subqueries).

Dates are day indices ``1..DATE_DOMAIN`` and float attributes are never
used in pushable predicates (floats cannot be gridded); both choices only
re-express the TPC-H parameters, they do not change workload shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.market.binding import BindingPattern
from repro.market.dataset import Dataset
from repro.market.pricing import PricingPolicy
from repro.relational.database import Database
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.table import Table
from repro.relational.types import AttributeType as T
from repro.workloads.weather import QueryInstance
from repro.workloads.zipfian import skewed_choice

DATE_DOMAIN = 365
SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
STATUSES = ("F", "O", "P")
RETURN_FLAGS = ("A", "N", "R")
LINE_STATUSES = ("F", "O")
SHIP_MODES = ("AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK")
BRANDS = tuple(f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6))
TYPES = tuple(
    f"{a} {b}"
    for a in ("ECONOMY", "LARGE", "MEDIUM", "PROMO", "SMALL", "STANDARD")
    for b in ("ANODIZED", "BRUSHED", "BURNISHED", "PLATED", "POLISHED")
)
CONTAINERS = tuple(
    f"{a} {b}"
    for a in ("JUMBO", "LG", "MED", "SM", "WRAP")
    for b in ("BAG", "BOX", "CAN", "CASE", "DRUM", "JAR", "PACK", "PKG")
)
REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
NATIONS = 25
MAX_SIZE = 50
MAX_QUANTITY = 50

#: Base cardinalities at scale 1.0 (≈13k lineitems; the paper's 1 GB is
#: scale ≈ 460 in these units — use Fig 13's relative sweep instead).
BASE_SUPPLIERS = 25
BASE_CUSTOMERS = 300
BASE_PARTS = 400
BASE_ORDERS = 3000
LINES_PER_ORDER = (1, 7)
SUPPLIERS_PER_PART = 2


@dataclass(frozen=True)
class TpchConfig:
    """Scale and skew knobs for the generator."""

    scale: float = 1.0
    #: ``None`` → uniform TPC-H; ``1.0`` → the paper's zipf=1 skew.
    zipf: float | None = None
    tuples_per_transaction: int = 100
    price_per_transaction: float = 1.0
    seed: int = 13


@dataclass
class TpchWorkloadData:
    """The generated market dataset, local tables, and raw rows."""

    dataset: Dataset
    nation: Table
    region: Table
    config: TpchConfig
    rows: dict[str, list[tuple]]

    @property
    def datasets(self) -> list[Dataset]:
        return [self.dataset]

    def local_database(self) -> Database:
        database = Database()
        database.add(self.nation)
        database.add(self.region)
        return database

    def total_market_rows(self) -> int:
        local = {"nation", "region"}
        return sum(
            len(rows) for name, rows in self.rows.items() if name not in local
        )


def _count(base: int, scale: float) -> int:
    return max(int(round(base * scale)), 1)


def generate_tpch_workload(config: TpchConfig | None = None) -> TpchWorkloadData:
    """Generate all eight tables and publish the market dataset."""
    config = config or TpchConfig()
    rng = random.Random(config.seed)
    z = config.zipf

    n_suppliers = _count(BASE_SUPPLIERS, config.scale)
    n_customers = _count(BASE_CUSTOMERS, config.scale)
    n_parts = _count(BASE_PARTS, config.scale)
    n_orders = _count(BASE_ORDERS, config.scale)

    region_rows = [(i, name) for i, name in enumerate(REGIONS)]
    nation_rows = [
        (i, f"NATION{i:02d}", i % len(REGIONS)) for i in range(NATIONS)
    ]

    supplier_rows = [
        (
            key,
            skewed_choice(range(NATIONS), z, rng),
            round(rng.uniform(-999.0, 9999.0), 2),
        )
        for key in range(1, n_suppliers + 1)
    ]
    customer_rows = [
        (
            key,
            skewed_choice(range(NATIONS), z, rng),
            skewed_choice(SEGMENTS, z, rng),
            round(rng.uniform(-999.0, 9999.0), 2),
        )
        for key in range(1, n_customers + 1)
    ]
    part_rows = [
        (
            key,
            skewed_choice(BRANDS, z, rng),
            skewed_choice(TYPES, z, rng),
            skewed_choice(range(1, MAX_SIZE + 1), z, rng),
            skewed_choice(CONTAINERS, z, rng),
            round(rng.uniform(900.0, 2100.0), 2),
        )
        for key in range(1, n_parts + 1)
    ]
    partsupp_rows = []
    for part_key in range(1, n_parts + 1):
        suppliers = rng.sample(
            range(1, n_suppliers + 1),
            min(SUPPLIERS_PER_PART, n_suppliers),
        )
        for supp_key in suppliers:
            partsupp_rows.append(
                (
                    part_key,
                    supp_key,
                    rng.randrange(1, 10000),
                    round(rng.uniform(1.0, 1000.0), 2),
                )
            )

    customer_keys = list(range(1, n_customers + 1))
    part_keys = list(range(1, n_parts + 1))
    supplier_keys = list(range(1, n_suppliers + 1))
    dates = list(range(1, DATE_DOMAIN + 1))

    orders_rows = []
    lineitem_rows = []
    for order_key in range(1, n_orders + 1):
        order_date = skewed_choice(dates, z, rng)
        orders_rows.append(
            (
                order_key,
                skewed_choice(customer_keys, z, rng),
                skewed_choice(STATUSES, z, rng),
                order_date,
                skewed_choice(PRIORITIES, z, rng),
                round(rng.uniform(1000.0, 400000.0), 2),
            )
        )
        for line_number in range(1, rng.randint(*LINES_PER_ORDER) + 1):
            quantity = skewed_choice(range(1, MAX_QUANTITY + 1), z, rng)
            ship_date = min(order_date + rng.randint(1, 60), DATE_DOMAIN)
            lineitem_rows.append(
                (
                    order_key,
                    skewed_choice(part_keys, z, rng),
                    skewed_choice(supplier_keys, z, rng),
                    line_number,
                    quantity,
                    round(quantity * rng.uniform(900.0, 2100.0), 2),
                    round(rng.choice((0.0, 0.02, 0.04, 0.06, 0.08, 0.1)), 2),
                    skewed_choice(RETURN_FLAGS, z, rng),
                    skewed_choice(LINE_STATUSES, z, rng),
                    ship_date,
                    skewed_choice(SHIP_MODES, z, rng),
                )
            )

    date_domain = Domain.numeric(1, DATE_DOMAIN)
    nation_domain = Domain.numeric(0, NATIONS - 1)
    schemas = {
        "Supplier": Schema(
            [
                Attribute("SuppKey", T.INT, Domain.numeric(1, n_suppliers)),
                Attribute("NationKey", T.INT, nation_domain),
                Attribute("AcctBal", T.FLOAT),
            ]
        ),
        "Customer": Schema(
            [
                Attribute("CustKey", T.INT, Domain.numeric(1, n_customers)),
                Attribute("NationKey", T.INT, nation_domain),
                Attribute("MktSegment", T.STRING, Domain.categorical(SEGMENTS)),
                Attribute("AcctBal", T.FLOAT),
            ]
        ),
        "Part": Schema(
            [
                Attribute("PartKey", T.INT, Domain.numeric(1, n_parts)),
                Attribute("Brand", T.STRING, Domain.categorical(BRANDS)),
                Attribute("Type", T.STRING, Domain.categorical(TYPES)),
                Attribute("Size", T.INT, Domain.numeric(1, MAX_SIZE)),
                Attribute("Container", T.STRING, Domain.categorical(CONTAINERS)),
                Attribute("RetailPrice", T.FLOAT),
            ]
        ),
        "PartSupp": Schema(
            [
                Attribute("PartKey", T.INT, Domain.numeric(1, n_parts)),
                Attribute("SuppKey", T.INT, Domain.numeric(1, n_suppliers)),
                Attribute("AvailQty", T.INT, Domain.numeric(1, 9999)),
                Attribute("SupplyCost", T.FLOAT),
            ]
        ),
        "Orders": Schema(
            [
                Attribute("OrderKey", T.INT, Domain.numeric(1, n_orders)),
                Attribute("CustKey", T.INT, Domain.numeric(1, n_customers)),
                Attribute("OrderStatus", T.STRING, Domain.categorical(STATUSES)),
                Attribute("OrderDate", T.DATE, date_domain),
                Attribute(
                    "OrderPriority", T.STRING, Domain.categorical(PRIORITIES)
                ),
                Attribute("TotalPrice", T.FLOAT),
            ]
        ),
        "Lineitem": Schema(
            [
                Attribute("OrderKey", T.INT, Domain.numeric(1, n_orders)),
                Attribute("PartKey", T.INT, Domain.numeric(1, n_parts)),
                Attribute("SuppKey", T.INT, Domain.numeric(1, n_suppliers)),
                Attribute("LineNumber", T.INT, Domain.numeric(1, LINES_PER_ORDER[1])),
                Attribute("Quantity", T.INT, Domain.numeric(1, MAX_QUANTITY)),
                Attribute("ExtendedPrice", T.FLOAT),
                Attribute("Discount", T.FLOAT),
                Attribute(
                    "ReturnFlag", T.STRING, Domain.categorical(RETURN_FLAGS)
                ),
                Attribute(
                    "LineStatus", T.STRING, Domain.categorical(LINE_STATUSES)
                ),
                Attribute("ShipDate", T.DATE, date_domain),
                Attribute("ShipMode", T.STRING, Domain.categorical(SHIP_MODES)),
            ]
        ),
    }
    patterns = {
        "Supplier": "SuppKeyf, NationKeyf",
        "Customer": "CustKeyf, NationKeyf, MktSegmentf",
        "Part": "PartKeyf, Brandf, Typef, Sizef, Containerf",
        "PartSupp": "PartKeyf, SuppKeyf",
        "Orders": "OrderKeyf, CustKeyf, OrderStatusf, OrderDatef, OrderPriorityf",
        "Lineitem": (
            "OrderKeyf, PartKeyf, SuppKeyf, Quantityf, ReturnFlagf, "
            "LineStatusf, ShipDatef, ShipModef"
        ),
    }
    all_rows = {
        "region": region_rows,
        "nation": nation_rows,
        "supplier": supplier_rows,
        "customer": customer_rows,
        "part": part_rows,
        "partsupp": partsupp_rows,
        "orders": orders_rows,
        "lineitem": lineitem_rows,
    }

    pricing = PricingPolicy(
        tuples_per_transaction=config.tuples_per_transaction,
        price_per_transaction=config.price_per_transaction,
    )
    dataset = Dataset("TPCH", pricing)
    for name in ("Supplier", "Customer", "Part", "PartSupp", "Orders", "Lineitem"):
        dataset.add_table(
            Table(name, schemas[name], all_rows[name.lower()]),
            BindingPattern.parse(name, patterns[name]),
        )

    nation = Table(
        "Nation",
        Schema(
            [
                Attribute("NationKey", T.INT, nation_domain),
                Attribute("Name", T.STRING),
                Attribute("RegionKey", T.INT, Domain.numeric(0, len(REGIONS) - 1)),
            ]
        ),
        nation_rows,
    )
    region = Table(
        "Region",
        Schema(
            [
                Attribute("RegionKey", T.INT, Domain.numeric(0, len(REGIONS) - 1)),
                Attribute("Name", T.STRING),
            ]
        ),
        region_rows,
    )
    return TpchWorkloadData(
        dataset=dataset,
        nation=nation,
        region=region,
        config=config,
        rows=all_rows,
    )


# ---------------------------------------------------------------- templates

#: Twenty templates derived from the TPC-H queries, restricted to the
#: conjunctive select-join-aggregate subset the data-market setting admits.
TEMPLATES: dict[str, str] = {
    "T01": (
        "SELECT ReturnFlag, LineStatus, SUM(Quantity), "
        "SUM(ExtendedPrice * (1 - Discount)) AS revenue, COUNT(*) "
        "FROM Lineitem WHERE ShipDate >= ? AND ShipDate <= ? "
        "GROUP BY ReturnFlag, LineStatus"
    ),
    "T02": (
        "SELECT PartKey, RetailPrice FROM Part "
        "WHERE Brand = ? AND Size >= ? AND Size <= ?"
    ),
    "T03": (
        "SELECT Orders.OrderKey, SUM(ExtendedPrice * (1 - Discount)) AS revenue "
        "FROM Customer, Orders, Lineitem "
        "WHERE Customer.MktSegment = ? AND Orders.OrderDate <= ? "
        "AND Customer.CustKey = Orders.CustKey "
        "AND Lineitem.OrderKey = Orders.OrderKey "
        "GROUP BY Orders.OrderKey"
    ),
    "T04": (
        "SELECT OrderPriority, COUNT(*) FROM Orders "
        "WHERE OrderDate >= ? AND OrderDate <= ? GROUP BY OrderPriority"
    ),
    "T05": (
        "SELECT Nation.Name, SUM(ExtendedPrice * (1 - Discount)) AS revenue "
        "FROM Customer, Orders, Lineitem, Supplier, Nation "
        "WHERE Customer.CustKey = Orders.CustKey "
        "AND Orders.OrderKey = Lineitem.OrderKey "
        "AND Lineitem.SuppKey = Supplier.SuppKey "
        "AND Supplier.NationKey = Nation.NationKey "
        "AND Nation.RegionKey = ? "
        "AND Orders.OrderDate >= ? AND Orders.OrderDate <= ? "
        "GROUP BY Nation.Name"
    ),
    "T06": (
        "SELECT SUM(ExtendedPrice * Discount) AS revenue FROM Lineitem "
        "WHERE ShipDate >= ? AND ShipDate <= ? AND Quantity <= ?"
    ),
    "T07": (
        "SELECT Supplier.NationKey, COUNT(*) FROM Supplier, Lineitem "
        "WHERE Supplier.SuppKey = Lineitem.SuppKey "
        "AND Lineitem.ShipDate >= ? AND Lineitem.ShipDate <= ? "
        "GROUP BY Supplier.NationKey"
    ),
    "T08": (
        "SELECT AVG(ExtendedPrice) FROM Part, Lineitem, Orders "
        "WHERE Part.PartKey = Lineitem.PartKey "
        "AND Lineitem.OrderKey = Orders.OrderKey "
        "AND Part.Type = ? "
        "AND Orders.OrderDate >= ? AND Orders.OrderDate <= ?"
    ),
    "T09": (
        "SELECT SUM(SupplyCost) FROM Part, PartSupp "
        "WHERE Part.PartKey = PartSupp.PartKey AND Part.Brand = ?"
    ),
    "T10": (
        "SELECT Customer.CustKey, SUM(ExtendedPrice * (1 - Discount)) AS revenue "
        "FROM Customer, Orders, Lineitem "
        "WHERE Customer.CustKey = Orders.CustKey "
        "AND Orders.OrderKey = Lineitem.OrderKey "
        "AND Lineitem.ReturnFlag = ? "
        "AND Orders.OrderDate >= ? AND Orders.OrderDate <= ? "
        "GROUP BY Customer.CustKey"
    ),
    "T11": (
        "SELECT PartSupp.PartKey, SUM(AvailQty) FROM PartSupp, Supplier "
        "WHERE PartSupp.SuppKey = Supplier.SuppKey "
        "AND Supplier.NationKey = ? GROUP BY PartSupp.PartKey"
    ),
    "T12": (
        "SELECT Orders.OrderPriority, COUNT(*) FROM Lineitem, Orders "
        "WHERE Lineitem.OrderKey = Orders.OrderKey AND Lineitem.ShipMode = ? "
        "AND Lineitem.ShipDate >= ? AND Lineitem.ShipDate <= ? "
        "GROUP BY Orders.OrderPriority"
    ),
    "T13": (
        "SELECT CustKey, COUNT(*) FROM Orders "
        "WHERE OrderDate >= ? AND OrderDate <= ? GROUP BY CustKey"
    ),
    "T14": (
        "SELECT AVG(ExtendedPrice) FROM Lineitem, Part "
        "WHERE Lineitem.PartKey = Part.PartKey AND Part.Type = ? "
        "AND Lineitem.ShipDate >= ? AND Lineitem.ShipDate <= ?"
    ),
    "T15": (
        "SELECT SuppKey, SUM(ExtendedPrice * (1 - Discount)) AS revenue "
        "FROM Lineitem "
        "WHERE ShipDate >= ? AND ShipDate <= ? GROUP BY SuppKey"
    ),
    "T16": (
        "SELECT Part.Brand, COUNT(*) FROM Part, PartSupp "
        "WHERE Part.PartKey = PartSupp.PartKey "
        "AND Part.Size >= ? AND Part.Size <= ? GROUP BY Part.Brand"
    ),
    "T17": (
        "SELECT AVG(ExtendedPrice) FROM Lineitem, Part "
        "WHERE Part.PartKey = Lineitem.PartKey AND Part.Brand = ? "
        "AND Part.Container = ? AND Lineitem.Quantity <= ?"
    ),
    "T18": (
        "SELECT Orders.OrderKey, SUM(Quantity) FROM Orders, Lineitem "
        "WHERE Orders.OrderKey = Lineitem.OrderKey AND Orders.OrderStatus = ? "
        "AND Orders.OrderDate >= ? AND Orders.OrderDate <= ? "
        "GROUP BY Orders.OrderKey"
    ),
    "T19": (
        "SELECT SUM(ExtendedPrice * (1 - Discount)) AS revenue "
        "FROM Lineitem, Part "
        "WHERE Part.PartKey = Lineitem.PartKey AND Part.Brand = ? "
        "AND Lineitem.Quantity >= ? AND Lineitem.Quantity <= ?"
    ),
    "T20": (
        "SELECT Supplier.SuppKey, COUNT(*) FROM Supplier, PartSupp "
        "WHERE Supplier.SuppKey = PartSupp.SuppKey "
        "AND Supplier.NationKey = ? GROUP BY Supplier.SuppKey"
    ),
}


class TpchInstanceGenerator:
    """Samples parameter values from the generated data (validity by
    construction, mirroring the paper's non-empty-result rule)."""

    def __init__(self, data: TpchWorkloadData, seed: int = 17):
        self.data = data
        self.rng = random.Random(seed)
        self._supplier_nations = sorted(
            {row[1] for row in data.rows["supplier"]}
        )
        self._brands_present = sorted({row[1] for row in data.rows["part"]})
        self._types_present = sorted({row[2] for row in data.rows["part"]})
        self._containers_present = sorted({row[4] for row in data.rows["part"]})
        self._segments_present = sorted({row[2] for row in data.rows["customer"]})

    def _date_range(self, max_span: int = 90) -> tuple[int, int]:
        span = self.rng.randint(7, max_span)
        start = self.rng.randint(1, DATE_DOMAIN - span + 1)
        return start, start + span - 1

    def _size_range(self) -> tuple[int, int]:
        span = self.rng.randint(1, 15)
        start = self.rng.randint(1, MAX_SIZE - span + 1)
        return start, start + span - 1

    def instance(self, template: str) -> QueryInstance:
        sql = TEMPLATES[template]
        rng = self.rng
        date_lo, date_hi = self._date_range()
        if template == "T01":
            wide_lo, wide_hi = self._date_range(max_span=DATE_DOMAIN // 2)
            params = (wide_lo, wide_hi)
        elif template == "T02":
            size_lo, size_hi = self._size_range()
            params = (rng.choice(self._brands_present), size_lo, size_hi)
        elif template == "T03":
            params = (rng.choice(self._segments_present), date_hi)
        elif template == "T04":
            params = (date_lo, date_hi)
        elif template == "T05":
            params = (rng.randrange(len(REGIONS)), date_lo, date_hi)
        elif template == "T06":
            params = (date_lo, date_hi, rng.randint(10, MAX_QUANTITY))
        elif template == "T07":
            params = (date_lo, date_hi)
        elif template == "T08":
            params = (rng.choice(self._types_present), date_lo, date_hi)
        elif template == "T09":
            params = (rng.choice(self._brands_present),)
        elif template == "T10":
            params = (rng.choice(RETURN_FLAGS), date_lo, date_hi)
        elif template == "T11":
            params = (rng.choice(self._supplier_nations),)
        elif template == "T12":
            params = (rng.choice(SHIP_MODES), date_lo, date_hi)
        elif template == "T13":
            params = (date_lo, date_hi)
        elif template == "T14":
            params = (rng.choice(self._types_present), date_lo, date_hi)
        elif template == "T15":
            params = (date_lo, date_hi)
        elif template == "T16":
            params = self._size_range()
        elif template == "T17":
            params = (
                rng.choice(self._brands_present),
                rng.choice(self._containers_present),
                rng.randint(20, MAX_QUANTITY),
            )
        elif template == "T18":
            params = (rng.choice(STATUSES), date_lo, date_hi)
        elif template == "T19":
            quantity_lo = rng.randint(1, MAX_QUANTITY - 10)
            params = (
                rng.choice(self._brands_present),
                quantity_lo,
                quantity_lo + 10,
            )
        elif template == "T20":
            params = (rng.choice(self._supplier_nations),)
        else:
            raise KeyError(f"unknown template {template!r}")
        return QueryInstance(template, sql, params)

    def session(
        self, instances_per_template: int, shuffle: bool = True
    ) -> list[QueryInstance]:
        queries = [
            self.instance(template)
            for template in TEMPLATES
            for __ in range(instances_per_template)
        ]
        if shuffle:
            self.rng.shuffle(queries)
        return queries
