"""The paper's real-data workload, reproduced synthetically.

Windows Azure Marketplace (and with it the Worldwide Historical Weather and
Environmental Hazard Rank datasets) no longer exists, so this module
generates data with the same schemas, binding patterns, and size *ratios*
as Figure 1a, plus the buyer-local ``ZipMap`` table, and carries the five
query templates of Table 1 verbatim.

Dates are day indices ``1..days`` (integer axis) rather than YYYYMMDD
literals — same expressive power for range queries, and the uniform
estimator is not confused by calendar gaps.

Sizes are scaled down by default (the paper's Weather table has 19.5M rows;
the default config yields ~30k) — pass a bigger :class:`WeatherConfig` to
approach paper scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.market.binding import BindingPattern
from repro.market.dataset import Dataset
from repro.market.pricing import PricingPolicy
from repro.relational.database import Database
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.table import Table
from repro.relational.types import AttributeType as T
from repro.workloads.zipfian import skewed_choice


@dataclass(frozen=True)
class WeatherConfig:
    """Knobs for the synthetic WHW + EHR generator."""

    countries: int = 6
    stations_per_country: int = 40
    cities_per_country: int = 20
    days: int = 120
    zip_codes_per_city: int = 3
    max_rank: int = 100
    tuples_per_transaction: int = 100
    price_per_transaction: float = 1.0
    seed: int = 7
    #: Zipf skew for how stations distribute over cities (hot cities get
    #: many stations, like the paper's 788-stations-in-the-US example).
    station_city_zipf: float | None = 1.0


@dataclass
class WeatherWorkloadData:
    """Everything the harness needs: the market, local tables, raw rows."""

    market_dataset_whw: Dataset
    market_dataset_ehr: Dataset
    zipmap: Table
    config: WeatherConfig
    countries: list[str]
    cities: dict[str, list[str]]        # country -> its cities
    station_rows: list[tuple]
    weather_rows: list[tuple]
    pollution_rows: list[tuple]
    zipmap_rows: list[tuple]

    @property
    def datasets(self) -> list[Dataset]:
        return [self.market_dataset_whw, self.market_dataset_ehr]

    def local_database(self) -> Database:
        database = Database()
        database.add(self.zipmap)
        return database

    def total_market_rows(self) -> int:
        return (
            len(self.station_rows)
            + len(self.weather_rows)
            + len(self.pollution_rows)
        )


def generate_weather_workload(
    config: WeatherConfig | None = None,
) -> WeatherWorkloadData:
    """Generate the WHW + EHR datasets and the local ZipMap table."""
    config = config or WeatherConfig()
    rng = random.Random(config.seed)

    countries = [f"Country{i:02d}" for i in range(config.countries)]
    cities: dict[str, list[str]] = {}
    station_rows: list[tuple] = []
    station_id = 1000
    for country in countries:
        country_cities = [
            f"{country}_City{i:02d}" for i in range(config.cities_per_country)
        ]
        cities[country] = country_cities
        for __ in range(config.stations_per_country):
            city = skewed_choice(country_cities, config.station_city_zipf, rng)
            station_rows.append((country, station_id, city, f"State{rng.randrange(10)}"))
            station_id += 1

    weather_rows: list[tuple] = []
    for country, sid, __, __state in station_rows:
        base_temp = rng.uniform(-5.0, 25.0)
        for day in range(1, config.days + 1):
            weather_rows.append(
                (
                    country,
                    sid,
                    day,
                    round(base_temp + rng.uniform(-8.0, 8.0), 1),
                    round(max(rng.gauss(2.0, 3.0), 0.0), 1),
                    round(base_temp - rng.uniform(0.0, 5.0), 1),
                    round(rng.uniform(2.0, 40.0), 1),
                )
            )

    all_cities = [city for group in cities.values() for city in group]
    zipmap_rows: list[tuple] = []
    zip_code = 10000
    zip_city: list[tuple[int, str]] = []
    for city in all_cities:
        for __ in range(config.zip_codes_per_city):
            zipmap_rows.append((zip_code, city))
            zip_city.append((zip_code, city))
            zip_code += 1

    pollution_rows: list[tuple] = [
        (
            code,
            rng.randrange(1, config.max_rank + 1),
            round(rng.uniform(-60.0, 60.0), 3),
            round(rng.uniform(-180.0, 180.0), 3),
        )
        for code, __ in zip_city
    ]

    country_domain = Domain.categorical(countries)
    city_domain = Domain.categorical(all_cities)
    station_schema = Schema(
        [
            Attribute("Country", T.STRING, country_domain),
            Attribute("StationID", T.INT, Domain.numeric(1000, station_id - 1)),
            Attribute("City", T.STRING, city_domain),
            Attribute("State", T.STRING),
        ]
    )
    weather_schema = Schema(
        [
            Attribute("Country", T.STRING, country_domain),
            Attribute("StationID", T.INT, Domain.numeric(1000, station_id - 1)),
            Attribute("Date", T.DATE, Domain.numeric(1, config.days)),
            Attribute("Temperature", T.FLOAT),
            Attribute("Precipitation", T.FLOAT),
            Attribute("DewPoint", T.FLOAT),
            Attribute("WindSpeed", T.FLOAT),
        ]
    )
    pollution_schema = Schema(
        [
            Attribute(
                "ZipCode", T.INT, Domain.numeric(10000, zip_code - 1)
            ),
            Attribute("Rank", T.INT, Domain.numeric(1, config.max_rank)),
            Attribute("Latitude", T.FLOAT),
            Attribute("Longitude", T.FLOAT),
        ]
    )
    zipmap_schema = Schema(
        [
            Attribute("ZipCode", T.INT, Domain.numeric(10000, zip_code - 1)),
            Attribute("City", T.STRING, city_domain),
        ]
    )

    pricing = PricingPolicy(
        tuples_per_transaction=config.tuples_per_transaction,
        price_per_transaction=config.price_per_transaction,
    )
    whw = Dataset("WHW", pricing)
    whw.add_table(
        Table("Station", station_schema, station_rows),
        BindingPattern.parse("Station", "Countryf, StationIDf, Cityf"),
    )
    whw.add_table(
        Table("Weather", weather_schema, weather_rows),
        BindingPattern.parse("Weather", "Countryf, StationIDf, Datef"),
    )
    ehr = Dataset("EHR", pricing)
    ehr.add_table(
        Table("Pollution", pollution_schema, pollution_rows),
        BindingPattern.parse("Pollution", "ZipCodef, Rankf"),
    )

    return WeatherWorkloadData(
        market_dataset_whw=whw,
        market_dataset_ehr=ehr,
        zipmap=Table("ZipMap", zipmap_schema, zipmap_rows),
        config=config,
        countries=countries,
        cities=cities,
        station_rows=station_rows,
        weather_rows=weather_rows,
        pollution_rows=pollution_rows,
        zipmap_rows=zipmap_rows,
    )


# ---------------------------------------------------------------- templates

#: Table 1 of the paper, verbatim modulo identifier qualification.
TEMPLATES: dict[str, str] = {
    "Q1": (
        "SELECT * FROM Weather "
        "WHERE Weather.Country = ? AND Weather.Date >= ? AND Weather.Date <= ?"
    ),
    "Q2": (
        "SELECT COUNT(ZipCode) FROM Pollution "
        "WHERE Pollution.Rank >= ? AND Pollution.Rank <= ?"
    ),
    "Q3": (
        "SELECT City, AVG(Temperature) FROM Station, Weather "
        "WHERE Station.Country = Weather.Country = ? "
        "AND Weather.Date >= ? AND Weather.Date <= ? "
        "AND Station.StationID = Weather.StationID "
        "GROUP BY City"
    ),
    "Q4": (
        "SELECT Temperature FROM Station, Weather, ZipMap "
        "WHERE Station.Country = Weather.Country = ? AND ZipMap.ZipCode = ? "
        "AND Weather.Date >= ? AND Weather.Date <= ? "
        "AND Station.StationID = Weather.StationID "
        "AND Station.City = ZipMap.City"
    ),
    "Q5": (
        "SELECT * FROM Pollution, Station, Weather, ZipMap "
        "WHERE Station.Country = Weather.Country = ? "
        "AND Weather.Date >= ? AND Weather.Date <= ? "
        "AND Pollution.Rank >= ? AND Pollution.Rank <= ? "
        "AND Pollution.ZipCode = ZipMap.ZipCode "
        "AND ZipMap.City = Station.City "
        "AND Station.StationID = Weather.StationID"
    ),
}


@dataclass(frozen=True)
class QueryInstance:
    """One valid (non-empty-result) instantiation of a template."""

    template: str
    sql: str
    params: tuple


class WeatherInstanceGenerator:
    """Samples valid query instances the way the paper does (Section 5).

    "We generate valid query instances from those templates by randomly
    assigning values to the parameters.  A query instance is valid if it
    returns non-empty results" — validity is guaranteed constructively by
    sampling parameters from the generated data itself.
    """

    def __init__(self, data: WeatherWorkloadData, seed: int = 11,
                 max_date_span: int | None = None):
        self.data = data
        self.rng = random.Random(seed)
        #: Longest date range a template instance may span (defaults to a
        #: quarter of the calendar, so instances overlap but rarely cover
        #: everything).
        self.max_date_span = max_date_span or max(data.config.days // 4, 1)

    def _date_range(self) -> tuple[int, int]:
        days = self.data.config.days
        span = self.rng.randint(1, self.max_date_span)
        start = self.rng.randint(1, days - span + 1)
        return start, start + span - 1

    def _rank_range(self) -> tuple[int, int]:
        top = self.data.config.max_rank
        span = self.rng.randint(1, max(top // 4, 1))
        start = self.rng.randint(1, top - span + 1)
        return start, start + span - 1

    def instance(self, template: str) -> QueryInstance:
        sql = TEMPLATES[template]
        if template == "Q1":
            country = self.rng.choice(self.data.countries)
            low, high = self._date_range()
            return QueryInstance(template, sql, (country, low, high))
        if template == "Q2":
            low, high = self._rank_range()
            return QueryInstance(template, sql, (low, high))
        if template == "Q3":
            country = self.rng.choice(self.data.countries)
            low, high = self._date_range()
            return QueryInstance(template, sql, (country, low, high))
        if template == "Q4":
            # Pick a zip whose city actually hosts stations of the country.
            country, zip_code = self._zip_with_stations()
            low, high = self._date_range()
            return QueryInstance(template, sql, (country, zip_code, low, high))
        if template == "Q5":
            country = self.rng.choice(self.data.countries)
            low, high = self._date_range()
            rank_low, rank_high = self._rank_range()
            return QueryInstance(
                template, sql, (country, low, high, rank_low, rank_high)
            )
        raise KeyError(f"unknown template {template!r}")

    def _zip_with_stations(self) -> tuple[str, int]:
        station_cities = {(row[0], row[2]) for row in self.data.station_rows}
        while True:
            zip_code, city = self.rng.choice(self.data.zipmap_rows)
            for country in self.data.countries:
                if (country, city) in station_cities:
                    return country, zip_code

    def session(
        self, instances_per_template: int, shuffle: bool = True
    ) -> list[QueryInstance]:
        """``q`` instances of every template, in random issue order."""
        queries = [
            self.instance(template)
            for template in TEMPLATES
            for __ in range(instances_per_template)
        ]
        if shuffle:
            self.rng.shuffle(queries)
        return queries
