"""Structured query tracing: typed spans over the whole query pipeline.

One :class:`QueryTrace` is recorded per executed query (when tracing is
enabled) and holds a tree of :class:`Span` objects:

===================  ==========================================================
span kind            what it covers / key attributes
===================  ==========================================================
``query``            the root; label = SQL text or a caller-supplied tag
``parse``            SQL → :class:`~repro.relational.query.LogicalQuery`
``plan``             the optimizer run; ``evaluated_plans``, ``cost``
``plan_candidate``   zero-width event per candidate considered by the DP;
                     ``tables``, ``cost``, ``accepted`` (False = rejected)
``rewrite``          one uncached semantic rewrite; ``table``, ``remainder``,
                     ``estimated_transactions``, ``fully_covered``
``memo``             zero-width event per memoized rewrite probe; ``hit``
``table_fetch``      one executed market-table access; ``table``, ``source``
                     (``access`` | ``bound`` | ``covered``), ``purchased_rows``,
                     ``cache_served_rows``, ``transactions``, ``price``
``market_call``      one logical REST call within a table fetch; ``url``,
                     ``attempts``, ``retries``, ``replayed``, ``rows``,
                     ``transactions``, ``price``, ``billed_transactions``,
                     ``billed_price``, ``wasted_transactions``,
                     ``wasted_price``, ``failed``, ``elapsed_ms`` (simulated);
                     coalesced waiters add ``coalesced``,
                     ``saved_transactions``, ``saved_price``; issue-time
                     coverage skips add ``covered_skip``
``stage``            staging one table into the local DBMS; ``table``, ``rows``
``local_eval``       the final local evaluation; ``output_rows``
===================  ==========================================================

Thread-safety contract: spans are opened and closed on the tracer's owning
thread through :meth:`Tracer.span`/:meth:`Tracer.event`, which maintain a
*thread-local* span stack.  Worker threads (the executor's parallel fetch
pool) must never touch that stack; they create **detached** spans via
:meth:`Tracer.detached_span` — plain local objects, no shared state — and
the coordinating thread adopts them in a deterministic order once the pool
has drained (:meth:`Span.adopt`).  That construction makes concurrent
recording race-free: nothing concurrent ever mutates a shared span list.

Overhead contract: a disabled tracer must cost one attribute check on the
hot paths.  Callers therefore guard with the idiom::

    tracer = context.tracer
    if tracer.enabled:
        with tracer.span("table_fetch", table=name):
            ...

rather than calling :meth:`span` unconditionally;
``benchmarks/bench_trace_overhead.py`` measures both the guard cost and
the enabled-tracing overhead.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator


def _now_ms() -> float:
    return time.perf_counter() * 1000.0


class Span:
    """One timed, attributed step of a query.  Not thread-safe by itself —
    see the module docstring for the single-writer/adopt discipline."""

    __slots__ = ("kind", "start_ms", "end_ms", "attrs", "children")

    def __init__(
        self,
        kind: str,
        start_ms: float,
        attrs: dict[str, Any] | None = None,
    ):
        self.kind = kind
        self.start_ms = start_ms
        self.end_ms: float | None = None
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}
        self.children: list["Span"] = []

    # -- recording -----------------------------------------------------------

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def finish(self, end_ms: float | None = None) -> "Span":
        self.end_ms = end_ms if end_ms is not None else _now_ms()
        return self

    def adopt(self, child: "Span") -> "Span":
        """Attach a detached child span (caller must be the single writer)."""
        self.children.append(child)
        return child

    # -- reading -------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end_ms is not None

    @property
    def duration_ms(self) -> float:
        return (self.end_ms if self.end_ms is not None else self.start_ms) - self.start_ms

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "kind": self.kind,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "duration_ms": self.duration_ms,
        }
        if self.attrs:
            data["attrs"] = {
                key: _jsonable(value) for key, value in self.attrs.items()
            }
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    def __repr__(self) -> str:
        return (
            f"Span({self.kind}, {self.duration_ms:.3f}ms, "
            f"{len(self.children)} children, {self.attrs!r})"
        )


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(item) for item in value)
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


class QueryTrace:
    """The span tree of one executed (or explained) query."""

    __slots__ = ("label", "root")

    def __init__(self, label: str, root: Span):
        self.label = label
        self.root = root

    def spans(self, kind: str | None = None) -> list[Span]:
        """All spans (depth-first), optionally filtered by kind."""
        found = list(self.root.walk())
        if kind is None:
            return found
        return [span for span in found if span.kind == kind]

    def find(self, kind: str) -> Span | None:
        for span in self.root.walk():
            if span.kind == kind:
                return span
        return None

    def to_dict(self) -> dict[str, Any]:
        return {"label": self.label, "root": self.root.to_dict()}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def __repr__(self) -> str:
        return f"QueryTrace({self.label!r}, {len(self.spans())} spans)"


class _NullContext:
    """A reusable no-op context manager for the disabled-tracer path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_CONTEXT = _NullContext()


class Tracer:
    """Records :class:`QueryTrace` objects for the queries of one installation.

    ``enabled`` is a plain attribute so callers can keep the disabled-path
    overhead to a single check (see the module docstring), and so EXPLAIN
    ANALYZE can flip tracing on for exactly one query.  ``clock`` is
    injectable for deterministic tests.
    """

    def __init__(
        self,
        enabled: bool = False,
        clock: Callable[[], float] = _now_ms,
        keep: int = 64,
    ):
        self.enabled = enabled
        self.clock = clock
        #: Completed traces, most recent last (bounded ring).
        self.traces: list[QueryTrace] = []
        #: How many completed traces to retain.
        self.keep = keep
        self._local = threading.local()
        #: Guards the shared ``traces`` ring only — per-thread span stacks
        #: need no lock, but concurrent sessions all archive here.
        self._traces_lock = threading.Lock()

    # -- trace lifecycle -------------------------------------------------------

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def active(self) -> QueryTrace | None:
        return getattr(self._local, "trace", None)

    def begin_query(self, label: str) -> QueryTrace | None:
        """Open a trace (and its root ``query`` span) for one query."""
        if not self.enabled:
            return None
        root = Span("query", self.clock(), {"label": label})
        trace = QueryTrace(label, root)
        self._local.trace = trace
        self._stack.append(root)
        return trace

    def end_query(self) -> QueryTrace | None:
        """Close the active trace and archive it."""
        trace = self.active
        if trace is None:
            return None
        stack = self._stack
        # Close anything an exception left open, root included.
        while stack:
            span = stack.pop()
            if not span.finished:
                span.finish(self.clock())
        self._local.trace = None
        with self._traces_lock:
            self.traces.append(trace)
            if len(self.traces) > self.keep:
                del self.traces[: len(self.traces) - self.keep]
        return trace

    @property
    def last(self) -> QueryTrace | None:
        return self.traces[-1] if self.traces else None

    # -- span recording --------------------------------------------------------

    def span(self, kind: str, **attrs: Any):
        """Context manager opening a child span of the current span.

        Returns a no-op context when disabled or when no trace is active,
        so call sites never need a second guard — though hot paths should
        still check ``tracer.enabled`` first to skip argument packing.
        """
        if not self.enabled or self.active is None:
            return _NULL_CONTEXT
        return self._span_context(kind, attrs)

    @contextmanager
    def _span_context(self, kind: str, attrs: dict[str, Any]):
        stack = self._stack
        span = Span(kind, self.clock(), attrs)
        if stack:
            stack[-1].adopt(span)
        stack.append(span)
        try:
            yield span
        finally:
            span.finish(self.clock())
            if stack and stack[-1] is span:
                stack.pop()

    def event(self, kind: str, **attrs: Any) -> Span | None:
        """Record a zero-width span on the current span (memo hit, candidate)."""
        if not self.enabled or self.active is None:
            return None
        stack = self._stack
        now = self.clock()
        span = Span(kind, now, attrs).finish(now)
        if stack:
            stack[-1].adopt(span)
        return span

    def current_span(self) -> Span | None:
        stack = self._stack
        return stack[-1] if stack else None

    def detached_span(self, kind: str, **attrs: Any) -> Span:
        """A span NOT attached to the thread-local stack.

        This is the only tracer API worker threads may call: it touches no
        shared state, so concurrent fetches can each time themselves into
        a private span.  The coordinating thread adopts the finished spans
        in request order afterwards (``parent.adopt(span)``), which keeps
        trace structure deterministic regardless of thread scheduling.
        """
        return Span(kind, self.clock(), attrs)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self.traces)} traces kept)"
