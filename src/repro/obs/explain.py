"""EXPLAIN / EXPLAIN ANALYZE renderers and the trace JSON encoding.

``EXPLAIN`` renders the plan the optimizer chose — per-node estimated
transactions and rows, plus, for every market access, the semantic
rewriter's verdict: how much of the request region the store already
covers and exactly which remainder boxes would be bought.  It never
contacts the market.

``EXPLAIN ANALYZE`` renders the same tree after actually executing the
query with tracing on, annotating each market access with actuals:
est-vs-actual transactions, purchased vs cache-served rows, retries,
billing replays, and dollars wasted on failed calls.  The annotations are
read from the query's :class:`~repro.obs.trace.QueryTrace`, pairing each
``MarketAccessNode`` with its ``table_fetch`` span in plan order.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.core.plans import (
    JoinNode,
    LocalBlockNode,
    MarketAccessNode,
    PlanNode,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.optimizer import PlanningResult
    from repro.obs.trace import QueryTrace, Span


def _fmt(value: float) -> str:
    """Stable, golden-friendly number rendering (no float noise)."""
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def _constraint_str(constraint) -> str:
    if constraint.is_point:
        return f"{constraint.attribute}={constraint.value!r}"
    if constraint.is_set:
        values = ",".join(repr(v) for v in sorted(constraint.values, key=repr))
        return f"{constraint.attribute} in {{{values}}}"
    low = constraint.low if constraint.low is not None else ""
    high = constraint.high if constraint.high is not None else ""
    return f"{constraint.attribute}=[{low},{high})"


def _remainder_str(query) -> str:
    rendered = " & ".join(_constraint_str(c) for c in query.constraints)
    return (
        f"buy {rendered or '<whole table>'} "
        f"≈ {query.estimated_transactions} trans / "
        f"{_fmt(query.estimated_rows)} rows"
    )


#: Remainder boxes listed per access before eliding the rest.
MAX_REMAINDER_LINES = 6


def _coverage_lines(node: MarketAccessNode, pad: str) -> list[str]:
    rewrite = node.rewrite
    if rewrite is None:
        return []
    lines = []
    if rewrite.fully_covered:
        lines.append(
            f"{pad}coverage: store fully covers "
            f"{len(rewrite.request_boxes)} request box(es) — free"
        )
        return lines
    lines.append(
        f"{pad}coverage: {len(rewrite.request_boxes)} request box(es), "
        f"{len(rewrite.remainder)} remainder call(s) "
        f"≈ {rewrite.estimated_transactions} trans"
        + (" [rewritten]" if rewrite.used_rewriting else " [direct]")
    )
    for query in rewrite.remainder[:MAX_REMAINDER_LINES]:
        lines.append(f"{pad}  {_remainder_str(query)}")
    hidden = len(rewrite.remainder) - MAX_REMAINDER_LINES
    if hidden > 0:
        lines.append(f"{pad}  … {hidden} more remainder call(s)")
    return lines


class _FetchSpans:
    """Pairs plan market accesses with their ``table_fetch`` spans in order."""

    def __init__(self, trace: "QueryTrace | None"):
        spans = trace.spans("table_fetch") if trace is not None else []
        self._accesses = [
            s for s in spans if s.attrs.get("source") in ("access", "bound")
        ]
        self._covered = [s for s in spans if s.attrs.get("source") == "covered"]
        self._next_access = 0

    def for_access(self, table: str) -> "Span | None":
        while self._next_access < len(self._accesses):
            span = self._accesses[self._next_access]
            self._next_access += 1
            if span.attrs.get("table", "").lower() == table.lower():
                return span
        return None

    def for_covered(self, table: str) -> "Span | None":
        for span in self._covered:
            if span.attrs.get("table", "").lower() == table.lower():
                return span
        return None


def _divergence(estimated: float, actual: float) -> str:
    """actual/estimated as a misestimation factor, e.g. ``×2.50``.

    ``inf`` when something materialized out of a zero estimate; ``1.00``
    when both sides are zero (a correctly-predicted free access).
    """
    if estimated <= 0:
        return "inf" if actual > 0 else "1.00"
    return f"{actual / estimated:.2f}"


def _actuals_lines(span: "Span | None", estimated: float, pad: str) -> list[str]:
    if span is None:
        return [f"{pad}actual: not executed (empty bindings or skipped)"]
    attrs = span.attrs
    calls = attrs.get("calls", 0)
    transactions = attrs.get("transactions", 0)
    lines = [
        f"{pad}actual: {_fmt(estimated)} est → "
        f"{transactions} trans "
        f"(${attrs.get('price', 0.0):g}) in {calls} call(s), "
        f"divergence ×{_divergence(estimated, transactions)}"
    ]
    lines.append(
        f"{pad}rows: {attrs.get('purchased_rows', 0)} purchased, "
        f"{attrs.get('cache_served_rows', 0)} cache-served"
    )
    retries = attrs.get("retries", 0)
    replays = attrs.get("replays", 0)
    failed = attrs.get("failed_calls", 0)
    wasted = attrs.get("wasted_price", 0.0)
    if retries or replays or failed or wasted:
        lines.append(
            f"{pad}faults: {retries} retries, {replays} billing replays, "
            f"{failed} failed call(s), ${wasted:g} wasted"
        )
    return lines


def _render_node(
    node: PlanNode,
    indent: int,
    lines: list[str],
    fetches: _FetchSpans | None,
) -> None:
    pad = " " * indent
    detail_pad = " " * (indent + 4)
    if isinstance(node, JoinNode):
        lines.append(
            f"{pad}{node.symbol} est {_fmt(node.cost)} trans, "
            f"rows≈{_fmt(node.estimated_rows)}"
        )
        _render_node(node.left, indent + 2, lines, fetches)
        _render_node(node.right, indent + 2, lines, fetches)
        return
    if isinstance(node, LocalBlockNode):
        covered = (
            f" (covered market: {', '.join(node.covered_market_tables)})"
            if node.covered_market_tables
            else ""
        )
        lines.append(
            f"{pad}LocalBlock({', '.join(node.tables)}){covered} "
            f"rows≈{_fmt(node.estimated_rows)}"
        )
        if fetches is not None:
            for table in node.covered_market_tables:
                span = fetches.for_covered(table)
                if span is not None:
                    lines.append(
                        f"{detail_pad}{table}: "
                        f"{span.attrs.get('cache_served_rows', 0)} rows served "
                        f"from store, {span.attrs.get('transactions', 0)} trans"
                    )
        return
    if isinstance(node, MarketAccessNode):
        bind = (
            f" bind({', '.join(node.bind_attributes)})"
            f"×{_fmt(node.estimated_bindings)}"
            if node.bind_attributes
            else ""
        )
        lines.append(
            f"{pad}MarketAccess({node.table}){bind} "
            f"est {_fmt(node.cost)} trans, rows≈{_fmt(node.estimated_rows)}"
        )
        lines.extend(_coverage_lines(node, detail_pad))
        if fetches is not None:
            lines.extend(
                _actuals_lines(
                    fetches.for_access(node.table), node.cost, detail_pad
                )
            )
        return
    lines.append(f"{pad}{type(node).__name__} est {_fmt(node.cost)} trans")


def _planner_line(planning: "PlanningResult") -> str:
    return (
        f"planner: {planning.kept_plans} candidate(s) kept, "
        f"{planning.pruned_plans} pruned; "
        f"plan cache {planning.cache_status}"
    )


#: Pareto points listed in EXPLAIN before eliding the rest.
MAX_FRONTIER_POINTS = 6


def _objective_lines(planning: "PlanningResult") -> list[str]:
    """The objective / frontier / chosen-point block.

    Empty under the default min-dollars objective, so historical EXPLAIN
    output (and its goldens) stay byte-identical.
    """
    objective = getattr(planning, "objective", None)
    if objective is None or objective.is_default:
        return []
    points = list(planning.frontier)
    rendered = ", ".join(
        f"(${_fmt(cost)}, {_fmt(latency)} ms)"
        for cost, latency in points[:MAX_FRONTIER_POINTS]
    )
    hidden = len(points) - MAX_FRONTIER_POINTS
    if hidden > 0:
        rendered += f", … {hidden} more"
    chosen = (
        f"chosen: (${_fmt(planning.cost)}, "
        f"{_fmt(planning.latency_ms)} ms)"
    )
    if planning.objective_note:
        chosen += f" — {planning.objective_note}"
    return [
        f"objective: {objective.describe()}",
        f"pareto frontier: {len(points)} point(s): {rendered}",
        chosen,
    ]


def render_explain(planning: "PlanningResult", label: str | None = None) -> str:
    """The EXPLAIN rendering: estimated plan + coverage, market untouched."""
    lines = [f"EXPLAIN {label}" if label else "EXPLAIN"]
    _render_node(planning.plan, 0, lines, None)
    lines.append(_planner_line(planning))
    lines.extend(_objective_lines(planning))
    lines.append(
        f"estimated: {_fmt(planning.cost)} transactions; "
        f"{planning.evaluated_plans} candidate plan(s) evaluated; "
        f"{planning.kept_boxes}/{planning.enumerated_boxes} "
        f"bounding boxes kept"
    )
    return "\n".join(lines)


def render_explain_analyze(
    planning: "PlanningResult",
    stats,
    trace: "QueryTrace | None",
    label: str | None = None,
) -> str:
    """The EXPLAIN ANALYZE rendering: the plan annotated with actuals."""
    lines = [f"EXPLAIN ANALYZE {label}" if label else "EXPLAIN ANALYZE"]
    _render_node(planning.plan, 0, lines, _FetchSpans(trace))
    eval_span = trace.find("local_eval") if trace is not None else None
    if eval_span is not None:
        attrs = eval_span.attrs
        rate = attrs.get("rows_per_sec", 0.0)
        lines.append(
            f"local eval: engine={attrs.get('engine', '?')}, "
            f"{attrs.get('input_rows', 0)} rows in → "
            f"{attrs.get('output_rows', 0)} rows out, "
            f"{attrs.get('eval_ms', 0.0):.2f} ms "
            f"({rate:,.0f} rows/sec)"
        )
    lines.append(_planner_line(planning))
    lines.extend(_objective_lines(planning))
    lines.append(
        f"estimated: {_fmt(planning.cost)} transactions; "
        f"actual: {stats.transactions} transactions, "
        f"{stats.calls} call(s), ${stats.price:g}"
    )
    lines.append(
        f"latency: est {_fmt(planning.latency_ms)} ms → "
        f"actual {stats.market_time_ms:.1f} ms market "
        f"(critical path {stats.market_time_critical_path_ms:.1f} ms)"
    )
    if getattr(stats, "transport_mode", "threaded") != "threaded":
        lines.append(
            f"transport mode: {stats.transport_mode}, "
            f"{getattr(stats, 'prefetch_hits', 0)} prefetch hit(s)"
        )
    if stats.retries or stats.replays or stats.wasted_transactions:
        lines.append(
            f"transport: {stats.retries} retries, {stats.replays} replays, "
            f"{stats.wasted_transactions} transactions wasted "
            f"(${stats.wasted_price:g})"
        )
    if stats.failed_fetches:
        lines.append(
            f"partial: {len(stats.failed_fetches)} region(s) not bought"
        )
    if getattr(stats, "replans", 0):
        lines.append(
            f"adaptive: {stats.replans} mid-query re-plan(s), "
            f"est ${stats.replan_dollars_saved_est:g} suffix saved"
        )
    return "\n".join(lines)


def trace_to_dict(trace: "QueryTrace") -> dict[str, Any]:
    return trace.to_dict()


def trace_to_json(trace: "QueryTrace", indent: int | None = 2) -> str:
    return json.dumps(trace.to_dict(), indent=indent)
