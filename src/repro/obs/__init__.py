"""Cost-attributed observability: tracing, metrics, EXPLAIN.

PayLess's value proposition is *explaining where the money goes*, so this
package makes cost attribution a first-class optimizer output rather than
a log afterthought:

* :mod:`repro.obs.trace` — a :class:`Tracer` of typed spans threaded
  through the planner → rewriter → executor → transport pipeline.  Every
  dollar billed during a query is attributable to exactly one
  ``market_call`` span; memo hits, plan candidates, and local evaluation
  get spans too.  Disabled by default at near-zero overhead.
* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and histograms (queries, memo hit rate, coverage ratio, fetch-pool
  high-water mark, breaker transitions, spent vs wasted cents).
* :mod:`repro.obs.explain` — renderers for ``EXPLAIN`` (the chosen plan
  with estimated transactions and the rewriter's coverage/remainder
  boxes) and ``EXPLAIN ANALYZE`` (the same tree annotated with actuals:
  est-vs-actual transactions, cache-served vs purchased rows, wasted
  dollars), plus the ``--trace-json`` machine rendering.
"""

from repro.obs.explain import (
    render_explain,
    render_explain_analyze,
    trace_to_dict,
    trace_to_json,
)
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import QueryTrace, Span, Tracer

__all__ = [
    "MetricsRegistry",
    "QueryTrace",
    "REGISTRY",
    "Span",
    "Tracer",
    "render_explain",
    "render_explain_analyze",
    "trace_to_dict",
    "trace_to_json",
]
