"""Process-wide metrics: counters, gauges, histograms in one registry.

Zero-dependency, thread-safe, and deliberately small: the registry exists
so long-running installations (and the bench harness) can answer "what has
this process been doing?" without replaying traces.  The default
process-wide registry is :data:`REGISTRY`; a :class:`~repro.core.payless.
PayLess` installation can be handed a private one for isolation (tests do).

Metric names used by the pipeline:

=================================  ==========================================
``queries``                        counter — queries executed
``transactions_spent``             counter — market transactions spent
``cents_spent``                    counter — money spent, in cents
``cents_wasted``                   counter — money wasted on failures
``memo_hits`` / ``memo_misses``    counters — rewrite-memo outcomes
``rewrites`` / ``rewrites_covered``  counters — rewrites, and those the
                                   store fully covered (coverage ratio)
``fetch_pool_high_water``          gauge — max concurrently in-flight
                                   market calls observed in one batch
``breaker_transitions``            counter — circuit state changes
``breaker_opens``                  counter — transitions into OPEN
``fetch_batch_size``               histogram — remainder calls per access
``query_transactions``             histogram — transactions per query
``plan_candidates``                counter — candidate (sub)plans evaluated
``plan_candidates_pruned``         counter — candidates discarded by
                                   branch-and-bound / dominance pruning
``plan_bnb_fallbacks``             counter — prunings undone by the
                                   correctness net (re-ran unpruned)
``plan_cache_hits`` / ``..misses``  counters — plan-cache outcomes
``plan_cache_invalidations``       counter — entries dropped on epoch or
                                   clock change
``plan_cache_evictions``           counter — entries dropped by LRU
``planning_us``                    histogram — planning wall-clock, µs
``fetch_coalesced``                counter — market fetches answered by
                                   joining another session's in-flight call
``fetch_coalesce_wait_us``         histogram — waiter wall-clock until the
                                   leader's response arrived, µs
``dollars_saved_coalescing``       counter — market dollars the coalesced
                                   fetches would have cost
=================================  ==========================================

Derived ratios (memo hit rate, store coverage ratio, plan-cache hit
rate) are computed at snapshot time and appear in
:meth:`MetricsRegistry.snapshot` under ``memo_hit_rate``,
``store_coverage_ratio``, and ``plan_cache_hit_rate``.
"""

from __future__ import annotations

import threading
from typing import Any


class Counter:
    """A monotonically increasing float counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value with a remembered maximum (high-water mark)."""

    __slots__ = ("name", "_value", "_max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            if value > self._max:
                self._max = value

    def set_max(self, value: float) -> None:
        """Raise the high-water mark without disturbing the current value."""
        with self._lock:
            if value > self._max:
                self._max = value
            if value > self._value:
                self._value = value

    @property
    def value(self) -> float:
        return self._value

    @property
    def max(self) -> float:
        return self._max


class Histogram:
    """Count/sum/min/max summary of observed values (no buckets needed)."""

    __slots__ = ("name", "count", "total", "_min", "_max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0


class MetricsRegistry:
    """A named collection of metrics with a flat snapshot view."""

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, factory):
        metric = self._metrics.get(name)
        if metric is not None:
            return metric
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory(name)
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def reset(self) -> None:
        """Drop every metric (tests and fresh bench runs)."""
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> dict[str, float]:
        """A flat, JSON-ready view of every metric, plus derived ratios.

        Counters appear under their name; gauges add ``<name>_max``;
        histograms expand to ``_count`` / ``_sum`` / ``_mean`` / ``_max``.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        out: dict[str, float] = {}
        for metric in metrics:
            if isinstance(metric, Counter):
                out[metric.name] = metric.value
            elif isinstance(metric, Gauge):
                out[metric.name] = metric.value
                out[f"{metric.name}_max"] = metric.max
            elif isinstance(metric, Histogram):
                out[f"{metric.name}_count"] = float(metric.count)
                out[f"{metric.name}_sum"] = metric.total
                out[f"{metric.name}_mean"] = metric.mean
                out[f"{metric.name}_max"] = metric.max
        hits = out.get("memo_hits", 0.0)
        misses = out.get("memo_misses", 0.0)
        if hits + misses:
            out["memo_hit_rate"] = hits / (hits + misses)
        rewrites = out.get("rewrites", 0.0)
        if rewrites:
            out["store_coverage_ratio"] = (
                out.get("rewrites_covered", 0.0) / rewrites
            )
        plan_hits = out.get("plan_cache_hits", 0.0)
        plan_misses = out.get("plan_cache_misses", 0.0)
        if plan_hits + plan_misses:
            out["plan_cache_hit_rate"] = plan_hits / (plan_hits + plan_misses)
        return out


#: The process-wide default registry (installations may use private ones).
REGISTRY = MetricsRegistry()
